// Pre-lowered execution plans (docs/PERF.md "Execution plans").
//
// The plan-driven engine path must be bit-identical to the legacy
// graph/placement walk in every observable output: RunMetrics, Chrome
// trace JSON, critical-path attribution (including the per-link
// MeshTransit decomposition), the static bound analyzer, and whole
// .jfs snapshot byte streams — across the full Table 15 config matrix
// and both branch scenarios. Plans are also shareable: one read-only
// ExecPlan serves any number of concurrent engines (the parallel
// sweep's cross-lane sharing; run this binary under TSan).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/explain.hpp"
#include "analysis/figure_of_merit.hpp"
#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"
#include "obs/critpath.hpp"
#include "obs/event_tracer.hpp"
#include "obs/snapshot.hpp"
#include "sim/engine.hpp"
#include "sim/plan.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// ---- name / env resolution ----

TEST(PlanConfig, NamesRoundTrip) {
  using sim::PlanMode;
  EXPECT_EQ(sim::plan_mode_name(PlanMode::On), "on");
  EXPECT_EQ(sim::plan_mode_name(PlanMode::Off), "off");
  EXPECT_EQ(sim::plan_mode_name(PlanMode::Auto), "auto");
  EXPECT_EQ(sim::plan_mode_from_name("on"), PlanMode::On);
  EXPECT_EQ(sim::plan_mode_from_name("off"), PlanMode::Off);
  EXPECT_EQ(sim::plan_mode_from_name("auto"), PlanMode::Auto);
  EXPECT_FALSE(sim::plan_mode_from_name("fast").has_value());
  EXPECT_FALSE(sim::plan_mode_from_name("").has_value());
}

TEST(PlanConfig, ResolveReadsEnvironmentWithOnDefault) {
  using sim::PlanMode;
  // Explicit modes pass through untouched, whatever the env says.
  ASSERT_EQ(setenv("JAVAFLOW_PLAN", "off", 1), 0);
  EXPECT_EQ(sim::resolve_plan_mode(PlanMode::On), PlanMode::On);
  EXPECT_EQ(sim::resolve_plan_mode(PlanMode::Off), PlanMode::Off);
  // Auto follows the env...
  EXPECT_EQ(sim::resolve_plan_mode(PlanMode::Auto), PlanMode::Off);
  ASSERT_EQ(setenv("JAVAFLOW_PLAN", "on", 1), 0);
  EXPECT_EQ(sim::resolve_plan_mode(PlanMode::Auto), PlanMode::On);
  // ...warns-and-defaults on garbage, and defaults On when unset.
  ASSERT_EQ(setenv("JAVAFLOW_PLAN", "bogus", 1), 0);
  EXPECT_EQ(sim::resolve_plan_mode(PlanMode::Auto), PlanMode::On);
  ASSERT_EQ(unsetenv("JAVAFLOW_PLAN"), 0);
  EXPECT_EQ(sim::resolve_plan_mode(PlanMode::Auto), PlanMode::On);
}

// ---- shared corpus ----

const workloads::Corpus& shared_corpus() {
  static const workloads::Corpus corpus = workloads::make_corpus({});
  return corpus;
}

analysis::Sweep plan_sweep(sim::PlanMode mode, int threads,
                           bool attribution = false) {
  const workloads::Corpus& corpus = shared_corpus();
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }
  analysis::SweepOptions options;
  options.stride = 32;  // the CI smoke stride: a real corpus slice
  options.threads = threads;
  // Real worker threads even on small CI hosts, so the cross-lane
  // shared-plan reads actually happen (and TSan can see them).
  options.allow_oversubscribe = threads > 1;
  options.engine.plan = mode;
  options.attribution = attribution;
  return analysis::run_sweep(methods, corpus.program.pool, hot, options);
}

// ---- full-corpus golden equality ----

TEST(PlanEquality, FullSweepIsBitIdenticalAcrossPlanModes) {
  const analysis::Sweep on =
      plan_sweep(sim::PlanMode::On, 1, /*attribution=*/true);
  const analysis::Sweep off =
      plan_sweep(sim::PlanMode::Off, 1, /*attribution=*/true);

  // All six Table 15 configs, both scenarios, every RunMetrics field.
  ASSERT_EQ(on.configs.size(), 6u);
  ASSERT_GT(on.samples.size(), 100u);
  ASSERT_EQ(on.samples.size(), off.samples.size());
  for (std::size_t i = 0; i < on.samples.size(); ++i) {
    ASSERT_EQ(on.samples[i], off.samples[i])
        << "sample " << i << " (" << on.samples[i].method << ", config "
        << on.samples[i].config_index << ")";
  }
  // Attribution category vectors too — the flight-recorder edges the
  // plan path emits must parent/categorize identically.
  ASSERT_EQ(on.attribution.size(), off.attribution.size());
  ASSERT_FALSE(on.attribution.empty());
  for (std::size_t i = 0; i < on.attribution.size(); ++i) {
    ASSERT_EQ(on.attribution[i].valid, off.attribution[i].valid) << i;
    ASSERT_EQ(on.attribution[i].category_ticks,
              off.attribution[i].category_ticks)
        << i;
  }
}

// The parallel sweep shares each phase-A plan read-only across worker
// lanes; the result must match the serial sweep exactly (and running
// this under TSan proves the sharing is race-free).
TEST(PlanEquality, SerialAndParallelSweepsMatchWithPlansOn) {
  const analysis::Sweep serial = plan_sweep(sim::PlanMode::On, 1);
  const analysis::Sweep parallel = plan_sweep(sim::PlanMode::On, 4);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    ASSERT_EQ(serial.samples[i], parallel.samples[i]) << "sample " << i;
  }
}

// ---- per-run trace equality ----

// A loop over an array load: backward transfer, TAIL replay, memory
// ordering, mesh traffic — the full §6.3 event mix.
Program loop_program() {
  Program p;
  Assembler a(p, "plan.loop(IA)I", "plan");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  return p;
}

struct TracedRun {
  sim::RunMetrics metrics;
  std::vector<obs::TraceEvent> events;
  std::string chrome_json;
};

TracedRun traced_run(const sim::MachineConfig& cfg, sim::PlanMode mode,
                     const Program& p, const fabric::DataflowGraph& graph,
                     sim::BranchPredictor::Scenario scenario) {
  sim::EngineOptions options;
  options.plan = mode;
  obs::EventTracer tracer;
  options.tracer = &tracer;
  sim::Engine engine(cfg, options);
  sim::BranchPredictor predictor(scenario);
  TracedRun out;
  out.metrics = engine.run(p.methods[0], graph, predictor);
  out.events = tracer.events();
  obs::TraceMeta meta;
  meta.method = p.methods[0].name;
  meta.config = cfg.name;
  meta.scenario = "BP-1";
  meta.serial_per_mesh = cfg.serial_per_mesh;
  meta.node_labels.assign(p.methods[0].code.size(), "n");
  std::ostringstream os;
  obs::write_chrome_trace(os, tracer, meta);
  out.chrome_json = os.str();
  return out;
}

TEST(PlanEquality, TraceJsonIsIdenticalOnEveryConfigAndScenario) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    for (const auto scenario : {sim::BranchPredictor::Scenario::BP1,
                                sim::BranchPredictor::Scenario::BP2}) {
      const TracedRun on =
          traced_run(cfg, sim::PlanMode::On, p, graph, scenario);
      const TracedRun off =
          traced_run(cfg, sim::PlanMode::Off, p, graph, scenario);
      ASSERT_TRUE(on.metrics.completed) << cfg.name;
      EXPECT_EQ(on.metrics, off.metrics) << cfg.name;
      ASSERT_FALSE(on.events.empty()) << cfg.name;
      EXPECT_EQ(on.events, off.events) << cfg.name;
      EXPECT_EQ(on.chrome_json, off.chrome_json) << cfg.name;
    }
  }
}

// ---- attribution link decomposition ----

// AttributeOptions::plan replays the plan's precomputed X-Y route spans
// instead of walking net::MeshNetwork; the per-link tick map must agree
// exactly.
TEST(PlanEquality, LinkDecompositionMatchesMeshWalk) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    const fabric::Fabric fab(cfg.fabric_options());
    const fabric::Placement placement =
        fabric::load_method(fab, p.methods[0]);
    sim::ExecPlanBuilder builder;
    const sim::ExecPlan plan =
        builder.build(p.methods[0], graph, &placement, cfg);

    obs::FlightRecorder flight;
    sim::EngineOptions options;
    options.flight = &flight;
    sim::Engine engine(cfg, options);
    sim::BranchPredictor predictor(sim::BranchPredictor::Scenario::BP1);
    const sim::RunMetrics metrics =
        engine.run(p.methods[0], plan, predictor);
    ASSERT_TRUE(metrics.completed) << cfg.name;

    obs::AttributeOptions mesh_opts;
    mesh_opts.mesh_width = cfg.width;
    mesh_opts.collapsed = cfg.collapsed();
    const obs::Attribution via_mesh = obs::attribute(flight, mesh_opts);

    obs::AttributeOptions plan_opts;
    plan_opts.plan = &plan;
    const obs::Attribution via_plan = obs::attribute(flight, plan_opts);

    ASSERT_TRUE(via_mesh.valid) << cfg.name;
    EXPECT_EQ(via_mesh, via_plan) << cfg.name;
  }
}

// ---- bound analyzer on the lowered image ----

// The plan-based compute_bounds is the primary implementation; the
// (graph, fabric, placement, config) wrapper lowers and delegates. Both
// must agree, and the plan-derived lower bound must stay sound against
// the engine.
TEST(PlanBounds, PlanAndWrapperAgreeAndStaySound) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    const fabric::Fabric fab(cfg.fabric_options());
    const fabric::Placement placement =
        fabric::load_method(fab, p.methods[0]);
    sim::ExecPlanBuilder builder;
    const sim::ExecPlan plan =
        builder.build(p.methods[0], graph, &placement, cfg);

    const analysis::MethodBounds direct =
        analysis::compute_bounds(p.methods[0], plan);
    const analysis::MethodBounds wrapped = analysis::compute_bounds(
        p.methods[0], graph, fab, placement, cfg);
    ASSERT_TRUE(direct.valid) << cfg.name;
    EXPECT_EQ(direct.lower_bound_ticks, wrapped.lower_bound_ticks)
        << cfg.name;
    EXPECT_EQ(direct.operand_hi, wrapped.operand_hi) << cfg.name;
    EXPECT_EQ(direct.forward_fanout, wrapped.forward_fanout) << cfg.name;

    sim::Engine engine(cfg);
    sim::BranchPredictor predictor(sim::BranchPredictor::Scenario::BP1);
    const sim::RunMetrics metrics =
        engine.run(p.methods[0], plan, predictor);
    ASSERT_TRUE(metrics.completed) << cfg.name;
    EXPECT_LE(direct.lower_bound_ticks, metrics.ticks) << cfg.name;
  }
}

// ---- plan sharing ----

// One plan object, several concurrent engines: the dedup-class sharing
// run_sweep does across worker lanes, reduced to its essence. Under
// TSan this proves the plan's read-only contract.
TEST(PlanSharing, OnePlanServesConcurrentEngines) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const sim::MachineConfig cfg = sim::config_by_name("Compact4");
  const fabric::Fabric fab(cfg.fabric_options());
  const fabric::Placement placement =
      fabric::load_method(fab, p.methods[0]);
  sim::ExecPlanBuilder builder;
  const sim::ExecPlan plan =
      builder.build(p.methods[0], graph, &placement, cfg);

  constexpr int kLanes = 4;
  constexpr int kRunsPerLane = 8;
  std::vector<sim::RunMetrics> results(kLanes);
  std::vector<std::thread> lanes;
  lanes.reserve(kLanes);
  for (int lane = 0; lane < kLanes; ++lane) {
    lanes.emplace_back([&, lane] {
      sim::Engine engine(cfg);  // engines are lane-private; the plan is not
      sim::RunMetrics last;
      for (int r = 0; r < kRunsPerLane; ++r) {
        sim::BranchPredictor predictor(
            sim::BranchPredictor::Scenario::BP1);
        last = engine.run(p.methods[0], plan, predictor);
      }
      results[static_cast<std::size_t>(lane)] = last;
    });
  }
  for (std::thread& t : lanes) t.join();
  for (int lane = 1; lane < kLanes; ++lane) {
    EXPECT_EQ(results[0], results[static_cast<std::size_t>(lane)]);
  }
  EXPECT_TRUE(results[0].completed);
}

// Dedup-class reuse inside one engine: the workspace plan cache must
// serve repeated runs of the same (method, placement) without changing
// results, and rebuild when the method changes.
TEST(PlanSharing, WorkspacePlanCacheIsTransparent) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const sim::MachineConfig cfg = sim::config_by_name("Compact10");
  sim::Engine engine(cfg);

  sim::BranchPredictor bp1(sim::BranchPredictor::Scenario::BP1);
  const sim::RunMetrics cold = engine.run(p.methods[0], graph, bp1);
  sim::BranchPredictor bp1_again(sim::BranchPredictor::Scenario::BP1);
  const sim::RunMetrics warm = engine.run(p.methods[0], graph, bp1_again);
  EXPECT_EQ(cold, warm);

  // A different method through the same engine must not be served the
  // cached plan.
  Program q;
  Assembler a(q, "plan.add(II)I", "plan");
  a.args({ValueType::Int, ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iload(1).op(Op::iadd).op(Op::ireturn);
  q.methods.push_back(a.build());
  const fabric::DataflowGraph qgraph =
      fabric::build_dataflow_graph(q.methods[0], q.pool);
  sim::BranchPredictor bp1_q(sim::BranchPredictor::Scenario::BP1);
  const sim::RunMetrics other = engine.run(q.methods[0], qgraph, bp1_q);
  EXPECT_TRUE(other.completed);
  EXPECT_NE(other.ticks, warm.ticks);
}

// ---- snapshot byte equality ----

TEST(PlanEquality, SnapshotBytesAreIdenticalAcrossPlanModes) {
  const workloads::Corpus& corpus = shared_corpus();
  analysis::SnapshotBuildOptions options;
  options.stride = 64;  // a light slice — byte-equality is the point
  options.threads = 1;

  ASSERT_EQ(setenv("JAVAFLOW_PLAN", "on", 1), 0);
  const obs::Snapshot with_plan = analysis::build_snapshot(corpus, options);
  ASSERT_EQ(setenv("JAVAFLOW_PLAN", "off", 1), 0);
  const obs::Snapshot without_plan =
      analysis::build_snapshot(corpus, options);
  ASSERT_EQ(unsetenv("JAVAFLOW_PLAN"), 0);

  const std::string on_bytes = obs::serialize_snapshot(with_plan);
  const std::string off_bytes = obs::serialize_snapshot(without_plan);
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_EQ(on_bytes, off_bytes);
  EXPECT_EQ(obs::snapshot_digest(on_bytes),
            obs::snapshot_digest(off_bytes));
}

}  // namespace
}  // namespace javaflow
