// Tests for the parallel sweep engine: byte-identical output across
// thread counts, the serial in-line fallback, the thread-pool utility,
// and determinism of engine workspace reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// ---- ThreadPool ----

TEST(ThreadPool, ResolveMapsRequestsToWorkerCounts) {
  EXPECT_EQ(util::ThreadPool::resolve(1), 1u);
  EXPECT_EQ(util::ThreadPool::resolve(5), 5u);
  EXPECT_EQ(util::ThreadPool::resolve(0), util::ThreadPool::hardware_threads());
  EXPECT_EQ(util::ThreadPool::resolve(-3),
            util::ThreadPool::hardware_threads());
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ResolveClampedCapsAtHardwareThreads) {
  const unsigned hw = util::ThreadPool::hardware_threads();
  // Requests within the machine pass through untouched.
  EXPECT_EQ(util::ThreadPool::resolve_clamped(1), 1u);
  EXPECT_EQ(util::ThreadPool::resolve_clamped(0), hw);
  EXPECT_EQ(util::ThreadPool::resolve_clamped(static_cast<int>(hw)), hw);
  // Oversubscription clamps (with a stderr warning) unless allowed.
  EXPECT_EQ(util::ThreadPool::resolve_clamped(static_cast<int>(hw) + 3), hw);
  EXPECT_EQ(util::ThreadPool::resolve_clamped(static_cast<int>(hw) + 3,
                                              /*allow_oversubscribe=*/true),
            hw + 3);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i, unsigned lane) {
    ASSERT_LT(lane, pool.size());
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRunsInlineWhenWorkIsSmall) {
  util::ThreadPool pool(4);
  std::thread::id body_thread;
  pool.parallel_for(1, [&](std::size_t, unsigned lane) {
    EXPECT_EQ(lane, 0u);
    body_thread = std::this_thread::get_id();
  });
  // n <= 1 takes the in-line path: no handoff to a worker.
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ThreadPool, SubmitAndWaitIdleDrainTheQueue) {
  util::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

// ---- sweep determinism ----

analysis::Sweep corpus_sweep(int threads, int stride) {
  static const workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }
  analysis::SweepOptions options;
  options.stride = stride;
  options.threads = threads;
  // Determinism coverage must exercise multiple lanes even on a
  // single-hardware-thread CI host, where the clamp would fold every
  // request back to one worker.
  options.allow_oversubscribe = true;
  return analysis::run_sweep(methods, corpus.program.pool, hot, options);
}

TEST(ParallelSweep, MatchesSerialOnStridedCorpus) {
  const analysis::Sweep serial = corpus_sweep(/*threads=*/1, /*stride=*/61);
  const analysis::Sweep parallel = corpus_sweep(/*threads=*/4, /*stride=*/61);

  ASSERT_GT(serial.samples.size(), 100u);  // a real cross-section
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    ASSERT_EQ(serial.samples[i], parallel.samples[i])
        << "sample " << i << " (" << serial.samples[i].method << " vs "
        << parallel.samples[i].method << ")";
  }
  EXPECT_EQ(serial.samples, parallel.samples);
}

TEST(ParallelSweep, ThreadsOneMatchesDefaultOptions) {
  // SweepOptions{} defaults to threads = 1, the in-line path; an
  // explicit 1 must be byte-identical (and take the same path —
  // resolve(1) == 1 never constructs a pool).
  const analysis::Sweep a = corpus_sweep(/*threads=*/1, /*stride=*/173);
  const analysis::Sweep b = corpus_sweep(/*threads=*/2, /*stride=*/173);
  const analysis::Sweep c = corpus_sweep(/*threads=*/1, /*stride=*/173);
  EXPECT_EQ(a.samples, c.samples);
  EXPECT_EQ(a.samples, b.samples);
  ASSERT_EQ(util::ThreadPool::resolve(1), 1u);
}

// ---- engine workspace reuse ----

TEST(EngineWorkspace, ReusedEngineReproducesFreshEngineResults) {
  Program p;
  Assembler a(p, "bm.w(IA)I", "bm");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  Assembler b(p, "bm.tiny()I", "bm");
  b.returns(ValueType::Int);
  b.iconst(7).op(Op::ireturn);
  p.methods.push_back(b.build());

  const fabric::DataflowGraph loop_graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const fabric::DataflowGraph tiny_graph =
      fabric::build_dataflow_graph(p.methods[1], p.pool);

  sim::Engine reused(sim::config_by_name("Compact2"));
  std::vector<sim::RunMetrics> first, second;
  for (int round = 0; round < 2; ++round) {
    std::vector<sim::RunMetrics>& out = round == 0 ? first : second;
    // Interleave a big and a tiny method so the reused workspace must
    // shrink and regrow between runs.
    sim::BranchPredictor bp1(sim::BranchPredictor::Scenario::BP1);
    out.push_back(reused.run(p.methods[0], loop_graph, bp1));
    sim::BranchPredictor bp2(sim::BranchPredictor::Scenario::BP2);
    out.push_back(reused.run(p.methods[1], tiny_graph, bp2));
    sim::BranchPredictor bp3(sim::BranchPredictor::Scenario::BP1);
    out.push_back(reused.run(p.methods[0], loop_graph, bp3));
  }
  EXPECT_EQ(first, second);

  sim::Engine fresh(sim::config_by_name("Compact2"));
  sim::BranchPredictor bp(sim::BranchPredictor::Scenario::BP1);
  const sim::RunMetrics fresh_metrics =
      fresh.run(p.methods[0], loop_graph, bp);
  EXPECT_EQ(fresh_metrics, first[0]);
  EXPECT_TRUE(fresh_metrics.completed);
}

}  // namespace
}  // namespace javaflow
