// Tests for the observability layer: histogram bucketing, the no-op
// guarantee of a disabled engine, trace determinism across repeated
// runs, registry/RunMetrics consistency, sweep-level metric aggregation
// (serial == parallel), and the hardened env parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "analysis/report.hpp"
#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/env.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// ---- Histogram ----

TEST(Histogram, BucketsByPowerOfTwo) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(1024);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 1024);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 1u);  // zeros
  EXPECT_EQ(h.buckets[1], 1u);  // [1, 2)
  EXPECT_EQ(h.buckets[2], 2u);  // [2, 4)
  EXPECT_EQ(h.buckets[3], 1u);  // [4, 8)
  EXPECT_EQ(h.buckets[11], 1u);  // [1024, 2048)
  EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 1 + 2 + 3 + 4 + 1024) / 6.0);
}

TEST(Histogram, MergeIsCommutative) {
  obs::Histogram a, b;
  a.record(5);
  a.record(100);
  b.record(0);
  b.record(7777);

  obs::Histogram ab = a;
  ab.merge(b);
  obs::Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.count, 4u);
  EXPECT_EQ(ab.max, 7777u);
}

TEST(Histogram, TopBucketAbsorbsHugeValues) {
  obs::Histogram h;
  h.record(std::int64_t{1} << 40);
  EXPECT_EQ(h.buckets[obs::Histogram::kBuckets - 1], 1u);
}

// ---- test method ----

Program loop_program() {
  Program p;
  Assembler a(p, "obs.loop(IA)I", "obs");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  return p;
}

sim::RunMetrics run_once(const Program& p, sim::EngineOptions options) {
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  sim::Engine engine(sim::config_by_name("Compact2"), options);
  sim::BranchPredictor bp(sim::BranchPredictor::Scenario::BP1);
  return engine.run(p.methods[0], graph, bp);
}

// ---- no-op guarantee ----

TEST(Telemetry, DisabledEngineMatchesInstrumentedEngine) {
  const Program p = loop_program();

  const sim::RunMetrics plain = run_once(p, {});

  obs::MetricsRegistry registry;
  obs::EventTracer tracer;
  sim::EngineOptions options;
  options.metrics = &registry;
  options.tracer = &tracer;
  const sim::RunMetrics instrumented = run_once(p, options);

  // Telemetry observes; it must never perturb simulated time.
  EXPECT_EQ(plain, instrumented);
  EXPECT_TRUE(instrumented.completed);
  EXPECT_GT(tracer.events().size(), 0u);
}

// ---- registry / RunMetrics consistency ----

TEST(Telemetry, RegistryCountsMatchRunMetrics) {
  const Program p = loop_program();
  obs::MetricsRegistry registry;
  sim::EngineOptions options;
  options.metrics = &registry;
  const sim::RunMetrics m = run_once(p, options);

  ASSERT_TRUE(m.completed);
  EXPECT_EQ(registry.runs, 1u);
  EXPECT_EQ(registry.serial_messages,
            static_cast<std::uint64_t>(m.serial_messages));
  EXPECT_EQ(registry.mesh_messages,
            static_cast<std::uint64_t>(m.mesh_messages));

  std::uint64_t firings_nodes = 0;
  for (const std::uint64_t f : registry.firings_by_node) firings_nodes += f;
  std::uint64_t firings_ops = 0;
  for (const std::uint64_t f : registry.firings_by_opcode) firings_ops += f;
  EXPECT_EQ(firings_nodes, static_cast<std::uint64_t>(m.instructions_fired));
  EXPECT_EQ(firings_ops, static_cast<std::uint64_t>(m.instructions_fired));

  // Every mesh message contributes its route's hop count to exactly the
  // four direction counters, and per-link loads sum to the same total.
  std::uint64_t dir_hops = 0;
  for (const std::uint64_t h : registry.mesh_dir_hops) dir_hops += h;
  std::uint64_t link_hops = 0;
  for (const auto& [link, n] : registry.mesh_link_load) link_hops += n;
  EXPECT_EQ(dir_hops, link_hops);
  if (m.mesh_messages > 0) {
    EXPECT_GT(dir_hops, 0u);
  }
}

TEST(Telemetry, RegistryAccumulatesAcrossRunsAndMergesCommutatively) {
  const Program p = loop_program();

  obs::MetricsRegistry twice;
  sim::EngineOptions options;
  options.metrics = &twice;
  run_once(p, options);
  run_once(p, options);
  EXPECT_EQ(twice.runs, 2u);

  obs::MetricsRegistry once_a, once_b;
  options.metrics = &once_a;
  run_once(p, options);
  options.metrics = &once_b;
  run_once(p, options);

  obs::MetricsRegistry ab = once_a;
  ab.merge(once_b);
  obs::MetricsRegistry ba = once_b;
  ba.merge(once_a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab, twice);
}

TEST(Telemetry, MetricsJsonIsDeterministic) {
  const Program p = loop_program();
  obs::MetricsRegistry registry;
  sim::EngineOptions options;
  options.metrics = &registry;
  run_once(p, options);

  std::ostringstream a, b;
  registry.write_json(a);
  registry.write_json(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"serial\""), std::string::npos);
  EXPECT_NE(a.str().find("\"mesh\""), std::string::npos);
}

// ---- trace determinism ----

std::string trace_json(const Program& p) {
  obs::EventTracer tracer;
  sim::EngineOptions options;
  options.tracer = &tracer;
  const sim::RunMetrics m = run_once(p, options);
  EXPECT_TRUE(m.completed);

  obs::TraceMeta meta;
  meta.method = p.methods[0].name;
  meta.config = "Compact2";
  meta.scenario = "bp1";
  meta.serial_per_mesh = sim::config_by_name("Compact2").serial_per_mesh;
  for (std::size_t i = 0; i < p.methods[0].code.size(); ++i) {
    meta.node_labels.push_back(std::to_string(i));
  }
  std::ostringstream os;
  obs::write_chrome_trace(os, tracer, meta);
  return os.str();
}

TEST(Telemetry, RepeatedRunsProduceIdenticalTraceJson) {
  const Program p = loop_program();
  const std::string first = trace_json(p);
  const std::string second = trace_json(p);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"displayTimeUnit\""), std::string::npos);
  // One track per network on the network pid.
  EXPECT_NE(first.find("serial"), std::string::npos);
  EXPECT_NE(first.find("mesh"), std::string::npos);
}

TEST(Telemetry, TraceRecordsFiringsAsCompleteSlices) {
  const Program p = loop_program();
  obs::EventTracer tracer;
  sim::EngineOptions options;
  options.tracer = &tracer;
  const sim::RunMetrics m = run_once(p, options);

  std::int64_t fire_starts = 0, fire_completes = 0;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.kind == obs::TraceEventKind::FireStart) ++fire_starts;
    if (e.kind == obs::TraceEventKind::FireComplete) ++fire_completes;
  }
  EXPECT_EQ(fire_starts, m.instructions_fired);
  EXPECT_EQ(fire_completes, m.instructions_fired);
}

// ---- sweep-level aggregation ----

analysis::Sweep metrics_sweep(int threads) {
  static const workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }
  analysis::SweepOptions options;
  options.stride = 97;
  options.threads = threads;
  // Multi-lane merge coverage must survive the hardware-thread clamp on
  // single-core CI hosts.
  options.allow_oversubscribe = true;
  options.collect_metrics = true;
  return analysis::run_sweep(methods, corpus.program.pool, hot, options);
}

TEST(SweepTelemetry, ParallelMetricsMatchSerialMetrics) {
  const analysis::Sweep serial = metrics_sweep(/*threads=*/1);
  const analysis::Sweep parallel = metrics_sweep(/*threads=*/4);

  ASSERT_GT(serial.samples.size(), 50u);
  EXPECT_EQ(serial.samples, parallel.samples);
  // The merged registry — every counter, histogram, and per-link map —
  // must be identical for any thread count.
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_GT(serial.metrics.runs, 0u);
  EXPECT_GT(serial.metrics.serial_messages, 0u);
}

TEST(SweepTelemetry, ProfileCoversEveryMethodAndCell) {
  const analysis::Sweep sweep = metrics_sweep(/*threads=*/2);
  const analysis::SweepProfile::Lane total = sweep.profile.total();
  EXPECT_EQ(total.cells, sweep.samples.size());
  EXPECT_GT(total.methods, 0u);
  EXPECT_GE(sweep.profile.wall_s, 0.0);
  ASSERT_GE(sweep.profile.lanes.size(), 1u);

  std::ostringstream os;
  analysis::write_sweep_json(os, sweep);
  EXPECT_NE(os.str().find("\"configs\""), std::string::npos);
  EXPECT_NE(os.str().find("\"mesh_messages\""), std::string::npos);
  EXPECT_NE(os.str().find("\"profile\""), std::string::npos);
}

TEST(SweepTelemetry, NetworkRowsAggregatePerConfig) {
  const analysis::Sweep sweep = metrics_sweep(/*threads=*/1);
  const std::vector<analysis::NetworkRow> rows =
      analysis::network_rows(sweep);
  ASSERT_EQ(rows.size(), sweep.configs.size());
  std::size_t usable_rows = 0;
  for (const analysis::NetworkRow& row : rows) {
    if (row.samples == 0) continue;  // no sampled method fit this config
    ++usable_rows;
    EXPECT_GT(row.total_serial_messages, 0u) << row.config;
    EXPECT_GT(row.mean_serial_messages, 0.0) << row.config;
  }
  EXPECT_GT(usable_rows, 0u);
}

// ---- env parsing ----

TEST(EnvParsing, ParseLongRejectsGarbage) {
  EXPECT_EQ(util::parse_long("42").value_or(-1), 42);
  EXPECT_EQ(util::parse_long("-3").value_or(1), -3);
  EXPECT_FALSE(util::parse_long("abc").has_value());
  EXPECT_FALSE(util::parse_long("4x").has_value());
  EXPECT_FALSE(util::parse_long("").has_value());
  EXPECT_FALSE(util::parse_long(nullptr).has_value());
  EXPECT_FALSE(util::parse_long("99999999999999999999").has_value());
}

TEST(EnvParsing, EnvIntFallsBackOnGarbageAndBounds) {
  ::setenv("JAVAFLOW_TEST_ENV", "abc", 1);
  EXPECT_EQ(util::env_int("JAVAFLOW_TEST_ENV", 7, 0), 7);
  ::setenv("JAVAFLOW_TEST_ENV", "-2", 1);
  EXPECT_EQ(util::env_int("JAVAFLOW_TEST_ENV", 7, 0), 7);  // below min_ok
  ::setenv("JAVAFLOW_TEST_ENV", "12", 1);
  EXPECT_EQ(util::env_int("JAVAFLOW_TEST_ENV", 7, 0), 12);
  ::unsetenv("JAVAFLOW_TEST_ENV");
  EXPECT_EQ(util::env_int("JAVAFLOW_TEST_ENV", 7, 0), 7);
}

TEST(EnvParsing, EnvFlagAcceptsTruthyValuesOnly) {
  ::setenv("JAVAFLOW_TEST_FLAG", "1", 1);
  EXPECT_TRUE(util::env_flag("JAVAFLOW_TEST_FLAG"));
  ::setenv("JAVAFLOW_TEST_FLAG", "true", 1);
  EXPECT_TRUE(util::env_flag("JAVAFLOW_TEST_FLAG"));
  ::setenv("JAVAFLOW_TEST_FLAG", "0", 1);
  EXPECT_FALSE(util::env_flag("JAVAFLOW_TEST_FLAG"));
  ::setenv("JAVAFLOW_TEST_FLAG", "maybe", 1);
  EXPECT_FALSE(util::env_flag("JAVAFLOW_TEST_FLAG"));
  ::unsetenv("JAVAFLOW_TEST_FLAG");
  EXPECT_FALSE(util::env_flag("JAVAFLOW_TEST_FLAG"));
}

}  // namespace
}  // namespace javaflow
