// Tests for multi-method fabric management: co-residency, interleaved
// placement around busy nodes, atomic execution, unload/reload.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "core/fabric_manager.hpp"
#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

bytecode::Method make_loop(Program& p, const std::string& name) {
  Assembler a(p, name, "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  return a.build();
}

TEST(FabricManager, LoadsMultipleMethods) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  p.methods.push_back(make_loop(p, "m.c(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  std::vector<FabricManager::MethodId> ids;
  for (const auto& m : p.methods) {
    auto id = mgr.load(m, p.pool);
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  EXPECT_EQ(mgr.resident_count(), 3u);
  EXPECT_EQ(mgr.occupied_slots(),
            static_cast<std::int32_t>(3 * p.methods[0].code.size()));
  // Methods occupy disjoint slots.
  const auto* a = mgr.find(ids[0]);
  const auto* b = mgr.find(ids[1]);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (const auto sa : a->placement.slot_of) {
    for (const auto sb : b->placement.slot_of) {
      EXPECT_NE(sa, sb);
    }
  }
}

TEST(FabricManager, SecondMethodLoadsAfterFirst) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto a = mgr.load(p.methods[0], p.pool);
  const auto b = mgr.load(p.methods[1], p.pool);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(mgr.find(*b)->anchor_slot,
            mgr.find(*a)->placement.max_slot + 1);
}

TEST(FabricManager, HeterogeneousCoResidencyInterleaves) {
  // Two methods with different instruction types share fabric rows: the
  // second fills node types the first skipped.
  Program p;
  // Method A: pure integer arithmetic (only arithmetic nodes).
  Assembler a(p, "m.arith()I", "test");
  a.returns(ValueType::Int);
  for (int k = 0; k < 12; ++k) a.iinc(0, 1);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  // Method B: storage ops (needs storage nodes that A skipped).
  Assembler b(p, "m.store(A)I", "test");
  b.args({ValueType::Ref}).returns(ValueType::Int);
  for (int k = 0; k < 4; ++k) {
    b.aload(0).iconst(k).op(Op::iaload).istore(1);
  }
  b.iload(1).op(Op::ireturn);
  p.methods.push_back(b.build());

  FabricManager mgr(sim::config_by_name("Hetero2"));
  const auto ida = mgr.load(p.methods[0], p.pool);
  const auto idb = mgr.load(p.methods[1], p.pool);
  ASSERT_TRUE(ida && idb);
  // B's first storage instruction lands inside A's span (a slot A could
  // not use) — the decentralized packing the paper describes.
  const auto* ra = mgr.find(*ida);
  const auto* rb = mgr.find(*idb);
  bool interleaved = false;
  for (const auto slot : rb->placement.slot_of) {
    if (slot < ra->placement.max_slot) interleaved = true;
  }
  EXPECT_TRUE(interleaved);
}

TEST(FabricManager, ExecuteRunsResidentMethods) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto a = mgr.load(p.methods[0], p.pool);
  const auto b = mgr.load(p.methods[1], p.pool);
  ASSERT_TRUE(a && b);
  const auto ra = mgr.execute(*a, sim::BranchPredictor::Scenario::BP1);
  const auto rb = mgr.execute(*b, sim::BranchPredictor::Scenario::BP1);
  ASSERT_TRUE(ra && rb);
  EXPECT_TRUE(ra->completed);
  EXPECT_TRUE(rb->completed);
  // The second resident sits deeper in the chain: the token bundle pays
  // more serial hops to reach it.
  EXPECT_GE(rb->ticks, ra->ticks);
}

TEST(FabricManager, UnloadFreesSlotsForReload) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto a = mgr.load(p.methods[0], p.pool);
  ASSERT_TRUE(a.has_value());
  const std::int32_t before = mgr.occupied_slots();
  ASSERT_TRUE(mgr.unload(*a));
  EXPECT_EQ(mgr.occupied_slots(), 0);
  EXPECT_EQ(mgr.find(*a), nullptr);
  // Reload lands at the start again.
  const auto b = mgr.load(p.methods[1], p.pool);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(mgr.find(*b)->anchor_slot, 0);
  EXPECT_EQ(mgr.occupied_slots(), before);
}

TEST(FabricManager, UnloadUnknownIdFails) {
  FabricManager mgr(sim::config_by_name("Compact2"));
  EXPECT_FALSE(mgr.unload(42));
}

TEST(FabricManager, ExecuteUnknownIdFails) {
  FabricManager mgr(sim::config_by_name("Compact2"));
  EXPECT_FALSE(mgr.execute(42, sim::BranchPredictor::Scenario::BP1)
                   .has_value());
}

TEST(FabricManager, CapacityExhaustionRejectsLoad) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  sim::MachineConfig cfg = sim::config_by_name("Compact2");
  cfg.capacity = static_cast<int>(p.methods[0].code.size()) + 2;
  FabricManager mgr(cfg);
  ASSERT_TRUE(mgr.load(p.methods[0], p.pool).has_value());
  EXPECT_FALSE(mgr.load(p.methods[1], p.pool).has_value());
  // The failed load must not leak occupancy.
  EXPECT_EQ(mgr.occupied_slots(),
            static_cast<std::int32_t>(p.methods[0].code.size()));
}

TEST(FabricManager, SuperpositionOfKernels) {
  // Chapter 8: "the overall Instructions per Cycle for the system would
  // be the sum of the individual Instructions per Cycle for each
  // method." Load several kernels simultaneously; each still executes
  // with a per-method IPC close to its solo IPC.
  workloads::CorpusOptions opt;
  opt.total_methods = 0;
  workloads::Corpus corpus = workloads::make_corpus(opt);
  const char* names[] = {
      "scimark.utils.Random.nextDouble()D",
      "spec.benchmarks.compress.Compressor.output(I)V",
      "java.lang.String.compareTo(AA)I",
  };
  FabricManager mgr(sim::config_by_name("Hetero2"));
  JavaFlowMachine solo(sim::config_by_name("Hetero2"));
  double aggregate = 0.0, solo_sum = 0.0;
  for (const char* name : names) {
    const bytecode::Method* m = corpus.program.find(name);
    ASSERT_NE(m, nullptr) << name;
    const auto id = mgr.load(*m, corpus.program.pool);
    ASSERT_TRUE(id.has_value()) << name;
    const auto co = mgr.execute(*id, sim::BranchPredictor::Scenario::BP1);
    ASSERT_TRUE(co && co->completed) << name;
    aggregate += co->ipc();
    const DeployedMethod d = solo.deploy(*m, corpus.program.pool);
    solo_sum += solo.execute(d, sim::BranchPredictor::Scenario::BP1).ipc();
  }
  // Co-residency costs a little (methods sit deeper in the chain), but
  // the aggregate stays the sum of per-method IPCs to within ~25 %.
  EXPECT_GT(aggregate, 0.75 * solo_sum);
  EXPECT_LE(aggregate, solo_sum * 1.01);
}

TEST(FabricManager, QuiesceAndRebindCostsTwoPasses) {
  workloads::CorpusOptions opt;
  opt.total_methods = 0;
  workloads::Corpus corpus = workloads::make_corpus(opt);
  const bytecode::Method* m =
      corpus.program.find("scimark.utils.Random.nextDouble()D");
  ASSERT_NE(m, nullptr);
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto id = mgr.load(*m, corpus.program.pool);
  ASSERT_TRUE(id.has_value());
  const auto cycles = mgr.quiesce_and_rebind(*id);
  ASSERT_TRUE(cycles.has_value());
  const auto span = mgr.find(*id)->placement.max_slot -
                    mgr.find(*id)->anchor_slot + 1;
  EXPECT_GE(*cycles, 2 * span);           // two full circulations
  EXPECT_LT(*cycles, 2 * span + 64);      // plus one ring trip at most
  // The method still executes correctly afterwards.
  const auto r = mgr.execute(*id, sim::BranchPredictor::Scenario::BP1);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->completed);
}

TEST(FabricManager, QuiesceUnknownIdFails) {
  FabricManager mgr(sim::config_by_name("Compact2"));
  EXPECT_FALSE(mgr.quiesce_and_rebind(9).has_value());
}

// ---- serving-core edge paths (docs/SERVING.md) ----

// Row-aligned residencies of one method share the canonical pre-lowered
// plan: one lowering, two residents, phys_delta carrying the shift.
TEST(FabricManager, AlignedResidenciesShareCanonicalPlan) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  const sim::MachineConfig cfg = sim::config_by_name("Compact2");
  FabricManager mgr(cfg);
  const auto a = mgr.load(p.methods[0], p.pool, 0);
  const std::int32_t align = cfg.idus_per_node * cfg.width;
  const auto b = mgr.load(p.methods[0], p.pool, 2 * align);
  ASSERT_TRUE(a && b);
  const auto* ra = mgr.find(*a);
  const auto* rb = mgr.find(*b);
  EXPECT_TRUE(ra->plan_shared);
  EXPECT_TRUE(rb->plan_shared);
  EXPECT_EQ(ra->plan, rb->plan);  // literally the same lowering
  EXPECT_EQ(ra->phys_delta, 0);
  EXPECT_EQ(rb->phys_delta, 2 * cfg.width);
  EXPECT_EQ(mgr.plans_shared(), 2);
  EXPECT_EQ(mgr.plans_lowered(), 0);
}

// An unaligned packing (greedy, right behind the first resident) cannot
// reuse the canonical plan and pays a dedicated lowering.
TEST(FabricManager, UnalignedPackingGetsDedicatedPlan) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto a = mgr.load(p.methods[0], p.pool);
  const auto b = mgr.load(p.methods[1], p.pool);  // anchor mid-row
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(mgr.find(*a)->plan_shared);
  EXPECT_FALSE(mgr.find(*b)->plan_shared);
  EXPECT_EQ(mgr.find(*b)->phys_delta, 0);
  EXPECT_EQ(mgr.plans_lowered(), 1);
  // Both paths still execute to completion with identical results on
  // re-execution (the persistent engine's caches are behavior-neutral).
  const auto r1 = mgr.execute(*b, sim::BranchPredictor::Scenario::BP1);
  const auto r2 = mgr.execute(*b, sim::BranchPredictor::Scenario::BP1);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, *r2);
}

// The begin/end lease enforces §4.3 exactly like execute() does:
// re-entry, unload, quiesce, and execute are all rejected while leased.
TEST(FabricManager, ExecuteLeaseBlocksConflictingOperations) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto id = mgr.load(p.methods[0], p.pool);
  ASSERT_TRUE(id.has_value());
  const FabricManager::Resident* r = mgr.begin_execute(*id);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(r->plan, nullptr);
  EXPECT_TRUE(r->plan->fits());
  EXPECT_EQ(mgr.begin_execute(*id), nullptr);  // Anchor busy
  EXPECT_FALSE(mgr.unload(*id));
  EXPECT_FALSE(mgr.quiesce_and_rebind(*id).has_value());
  EXPECT_FALSE(mgr.execute(*id, sim::BranchPredictor::Scenario::BP1)
                   .has_value());
  mgr.end_execute(*id);
  EXPECT_TRUE(mgr.unload(*id));
}

// Loading proceeds around a busy resident: the CMD_LOAD_INSTRUCTION
// stream passes through executing nodes (§6.2).
TEST(FabricManager, LoadsAroundBusyResident) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  p.methods.push_back(make_loop(p, "m.b(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto a = mgr.load(p.methods[0], p.pool);
  ASSERT_TRUE(a.has_value());
  ASSERT_NE(mgr.begin_execute(*a), nullptr);
  const auto b = mgr.load(p.methods[1], p.pool);
  ASSERT_TRUE(b.has_value());
  // Disjoint slots despite the lease.
  for (const auto sa : mgr.find(*a)->placement.slot_of) {
    for (const auto sb : mgr.find(*b)->placement.slot_of) {
      EXPECT_NE(sa, sb);
    }
  }
  mgr.end_execute(*a);
}

// Canonical plans survive unload: cycling a method through the fabric
// re-shares the original lowering instead of lowering again.
TEST(FabricManager, CanonicalPlanSurvivesUnloadCycle) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto a = mgr.load(p.methods[0], p.pool);
  ASSERT_TRUE(a.has_value());
  const sim::ExecPlan* first = mgr.find(*a)->plan;
  ASSERT_TRUE(mgr.unload(*a));
  const auto b = mgr.load(p.methods[0], p.pool);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(mgr.find(*b)->plan, first);
  EXPECT_EQ(mgr.plans_shared(), 2);
  EXPECT_EQ(mgr.plans_lowered(), 0);
}

// canonical_span reports the fresh-fabric footprint the serving
// frontend's aligned-gap scan must find.
TEST(FabricManager, CanonicalSpanMatchesFreshLoad) {
  Program p;
  p.methods.push_back(make_loop(p, "m.a(I)I"));
  FabricManager mgr(sim::config_by_name("Compact2"));
  const auto span = mgr.canonical_span(p.methods[0], p.pool);
  ASSERT_TRUE(span.has_value());
  const auto id = mgr.load(p.methods[0], p.pool);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*span, mgr.find(*id)->placement.max_slot + 1);
  // A method that cannot fit even on an empty fabric has no span.
  sim::MachineConfig tiny = sim::config_by_name("Compact2");
  tiny.capacity = 2;
  FabricManager small(tiny);
  EXPECT_FALSE(small.canonical_span(p.methods[0], p.pool).has_value());
}

}  // namespace
}  // namespace javaflow
