// Tests for the on-chip network models (serial chain, mesh, rings).
#include <gtest/gtest.h>

#include "net/mesh_network.hpp"
#include "net/message.hpp"
#include "net/ring_network.hpp"
#include "net/serial_network.hpp"

namespace javaflow::net {
namespace {

TEST(SerialNetwork, HopsAreChainDistance) {
  SerialNetwork s(100);
  EXPECT_EQ(s.hops(0, 0), 0);
  EXPECT_EQ(s.hops(0, 5), 5);
  EXPECT_EQ(s.hops(7, 2), 5);  // reverse network is symmetric
}

TEST(SerialNetwork, CollapsedTransitIsFree) {
  SerialNetwork s(100);
  EXPECT_EQ(s.transit_ticks(0, 50, /*collapsed=*/true), 0);
  EXPECT_EQ(s.transit_ticks(0, 50, /*collapsed=*/false), 50);
}

TEST(MeshNetwork, SerpentineCoordinates) {
  MeshNetwork m(10);
  // Row 0 runs left-to-right, row 1 right-to-left.
  EXPECT_EQ(m.coord_of(0).x, 0);
  EXPECT_EQ(m.coord_of(0).y, 0);
  EXPECT_EQ(m.coord_of(9).x, 9);
  EXPECT_EQ(m.coord_of(10).x, 9);  // serpentine turn
  EXPECT_EQ(m.coord_of(10).y, 1);
  EXPECT_EQ(m.coord_of(19).x, 0);
  EXPECT_EQ(m.coord_of(20).x, 0);
  EXPECT_EQ(m.coord_of(20).y, 2);
}

TEST(MeshNetwork, AdjacentChainSlotsAreAdjacentInMesh) {
  // The property the serpentine layout exists for: linear neighbours stay
  // one mesh hop apart, including across row turns.
  MeshNetwork m(10);
  for (int slot = 0; slot < 99; ++slot) {
    EXPECT_EQ(m.distance(slot, slot + 1), 1) << "slot " << slot;
  }
}

TEST(MeshNetwork, ManhattanDistance) {
  MeshNetwork m(10);
  // Slot 0 is (0,0); slot 25 is row 2 (left-to-right), x=5.
  EXPECT_EQ(m.coord_of(25).x, 5);
  EXPECT_EQ(m.coord_of(25).y, 2);
  EXPECT_EQ(m.distance(0, 25), 7);
  // Self-transfer still crosses the local router.
  EXPECT_EQ(m.distance(33, 33), 1);
}

TEST(MeshNetwork, CollapsedDistanceIsOne) {
  MeshNetwork m(10);
  EXPECT_EQ(m.transit_mesh_cycles(0, 95, /*collapsed=*/true), 1);
  EXPECT_GT(m.transit_mesh_cycles(0, 95, /*collapsed=*/false), 10);
}

TEST(RingNetwork, LatenciesAndBlocking) {
  RingNetwork ring;
  EXPECT_GT(ring.service_mesh_cycles(RingService::MemoryRead), 0);
  EXPECT_GT(ring.service_mesh_cycles(RingService::GppService),
            ring.service_mesh_cycles(RingService::MemoryRead));
  // Posted writes do not stall the node (§6.3 Storage Operations).
  EXPECT_FALSE(RingNetwork::blocking(RingService::MemoryWrite));
  EXPECT_TRUE(RingNetwork::blocking(RingService::MemoryRead));
  EXPECT_TRUE(RingNetwork::blocking(RingService::GppService));
}

TEST(RingNetwork, CountsRequests) {
  RingNetwork ring;
  ring.record_request(RingService::MemoryRead);
  ring.record_request(RingService::MemoryRead);
  ring.record_request(RingService::GppService);
  EXPECT_EQ(ring.requests(RingService::MemoryRead), 2u);
  EXPECT_EQ(ring.requests(RingService::GppService), 1u);
  EXPECT_EQ(ring.requests(RingService::MemoryWrite), 0u);
}

TEST(Messages, CommandNamesMatchFigure14) {
  EXPECT_EQ(command_name(Command::LoadInstruction), "CMD_LOAD_INSTRUCTION");
  EXPECT_EQ(command_name(Command::SendAddressesDown),
            "CMD_SEND_ADDRESSES_DOWN");
  EXPECT_EQ(command_name(Command::SendNeedsUp), "CMD_SEND_NEEDS_UP");
  EXPECT_EQ(command_name(Command::HeadToken), "HEAD_TOKEN");
  EXPECT_EQ(command_name(Command::TailToken), "TAIL_TOKEN");
  EXPECT_EQ(command_name(Command::QuieseToken), "QUIESE_TOKEN");
}

TEST(Messages, DataTypeMapping) {
  using bytecode::ValueType;
  EXPECT_EQ(data_type_for(ValueType::Int), DataType::Int);
  EXPECT_EQ(data_type_for(ValueType::Double), DataType::Double);
  EXPECT_EQ(data_type_for(ValueType::Ref), DataType::Ref);
  EXPECT_EQ(data_type_for(ValueType::Void), DataType::None);
}

}  // namespace
}  // namespace javaflow::net
