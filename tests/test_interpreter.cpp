// Tests for the reference interpreter — semantics, exceptions, _Quick
#include <cmath>
#include <limits>
// rewriting, and profiling.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "jvm/interpreter.hpp"

namespace javaflow::jvm {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

struct Fixture {
  Program program;
  Profiler profiler;

  const bytecode::Method& add(bytecode::Method m) {
    program.methods.push_back(std::move(m));
    return program.methods.back();
  }
};

TEST(Interpreter, IntArithmeticWrapsAt32Bits) {
  Fixture f;
  Assembler a(f.program, "t.ovf()I", "test");
  a.returns(ValueType::Int);
  a.iconst(2147483647).iconst(1).op(Op::iadd).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.ovf()I", {}).as_int(),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Interpreter, IntDivisionSemantics) {
  Fixture f;
  Assembler a(f.program, "t.div(II)I", "test");
  a.args({ValueType::Int, ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iload(1).op(Op::idiv).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.div(II)I",
                      {Value::make_int(7), Value::make_int(2)})
                .as_int(),
            3);
  EXPECT_EQ(vm.invoke("t.div(II)I",
                      {Value::make_int(-7), Value::make_int(2)})
                .as_int(),
            -3);  // truncation toward zero
  EXPECT_EQ(vm.invoke("t.div(II)I",
                      {Value::make_int(std::numeric_limits<std::int32_t>::min()),
                       Value::make_int(-1)})
                .as_int(),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_THROW(
      vm.invoke("t.div(II)I", {Value::make_int(1), Value::make_int(0)}),
      JvmException);
}

TEST(Interpreter, ShiftMasksCount) {
  Fixture f;
  Assembler a(f.program, "t.shl(II)I", "test");
  a.args({ValueType::Int, ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iload(1).op(Op::ishl).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(
      vm.invoke("t.shl(II)I", {Value::make_int(1), Value::make_int(33)})
          .as_int(),
      2);  // 33 & 31 == 1
}

TEST(Interpreter, LongAndConversionChain) {
  Fixture f;
  Assembler a(f.program, "t.conv(I)J", "test");
  a.args({ValueType::Int}).returns(ValueType::Long);
  a.iload(0).op(Op::i2l).iconst(1).op(Op::lshl).op(Op::lreturn);
  f.add(a.build());
  Interpreter vm(f.program);
  // (long)x << 1
  EXPECT_EQ(
      vm.invoke("t.conv(I)J", {Value::make_int(1 << 30)}).as_long(),
      (std::int64_t{1} << 31));
}

TEST(Interpreter, FloatPrecisionIsSinglePrecision) {
  Fixture f;
  Assembler a(f.program, "t.f()F", "test");
  a.returns(ValueType::Float);
  a.fconst(1.0);
  a.emit_cp(Op::ldc, f.program.pool.add_float(1e-9));
  a.op(Op::fadd).op(Op::freturn);
  f.add(a.build());
  Interpreter vm(f.program);
  // In float precision 1.0f + 1e-9f == 1.0f.
  EXPECT_EQ(vm.invoke("t.f()F", {}).as_fp(), 1.0);
}

TEST(Interpreter, FpCompareNanBias) {
  Fixture f;
  Assembler a(f.program, "t.cmp(DD)I", "test");
  a.args({ValueType::Double, ValueType::Double}).returns(ValueType::Int);
  a.dload(0).dload(1).op(Op::dcmpg).op(Op::ireturn);
  f.add(a.build());
  Assembler b(f.program, "t.cmpl(DD)I", "test");
  b.args({ValueType::Double, ValueType::Double}).returns(ValueType::Int);
  b.dload(0).dload(1).op(Op::dcmpl).op(Op::ireturn);
  f.add(b.build());
  Interpreter vm(f.program);
  const Value nan = Value::make_double(std::nan(""));
  const Value one = Value::make_double(1.0);
  EXPECT_EQ(vm.invoke("t.cmp(DD)I", {nan, one}).as_int(), 1);    // g: +1
  EXPECT_EQ(vm.invoke("t.cmpl(DD)I", {nan, one}).as_int(), -1);  // l: -1
  EXPECT_EQ(vm.invoke("t.cmp(DD)I", {one, one}).as_int(), 0);
}

TEST(Interpreter, SaturatingFpToIntConversion) {
  Fixture f;
  Assembler a(f.program, "t.d2i(D)I", "test");
  a.args({ValueType::Double}).returns(ValueType::Int);
  a.dload(0).op(Op::d2i).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.d2i(D)I", {Value::make_double(1e20)}).as_int(),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(vm.invoke("t.d2i(D)I", {Value::make_double(-1e20)}).as_int(),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(vm.invoke("t.d2i(D)I", {Value::make_double(std::nan(""))})
                .as_int(),
            0);
}

TEST(Interpreter, LoopComputesSum) {
  Fixture f;
  Assembler a(f.program, "t.sum(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto head = a.new_label(), done = a.new_label();
  a.iconst(0).istore(1);
  a.bind(head);
  a.iload(0).ifle(done);
  a.iload(1).iload(0).op(Op::iadd).istore(1);
  a.iinc(0, -1);
  a.goto_(head);
  a.bind(done);
  a.iload(1).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.sum(I)I", {Value::make_int(100)}).as_int(), 5050);
}

TEST(Interpreter, ArraysReadWriteAndBoundsCheck) {
  Fixture f;
  Assembler a(f.program, "t.arr(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  a.iconst(10).newarray(ValueType::Int).astore(1);
  a.aload(1).iload(0).iconst(42).op(Op::iastore);
  a.aload(1).iload(0).op(Op::iaload).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.arr(I)I", {Value::make_int(3)}).as_int(), 42);
  EXPECT_THROW(vm.invoke("t.arr(I)I", {Value::make_int(10)}), JvmException);
  EXPECT_THROW(vm.invoke("t.arr(I)I", {Value::make_int(-1)}), JvmException);
}

TEST(Interpreter, ByteArrayStoresTruncate) {
  Fixture f;
  Assembler a(f.program, "t.b()I", "test");
  a.returns(ValueType::Int);
  a.iconst(1).newarray(ValueType::Int).astore(0);
  a.aload(0).iconst(0).iconst(200).op(Op::bastore);
  a.aload(0).iconst(0).op(Op::baload).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.b()I", {}).as_int(), -56);  // (int8)200
}

TEST(Interpreter, FieldsAndQuickRewriting) {
  Fixture f;
  f.program.classes["P"] =
      bytecode::ClassDef{"P", {{"x", ValueType::Int}}, {{"total",
                                                          ValueType::Int}}};
  Assembler a(f.program, "P.bump(AI)I", "test");
  a.instance().args({ValueType::Ref, ValueType::Int}).returns(ValueType::Int);
  a.aload(0);
  a.aload(0).getfield("P", "x", ValueType::Int);
  a.iload(1).op(Op::iadd);
  a.putfield("P", "x", ValueType::Int);
  a.aload(0).getfield("P", "x", ValueType::Int).op(Op::ireturn);
  f.add(a.build());

  Interpreter vm(f.program, &f.profiler);
  const Ref obj = vm.heap().new_object(*f.program.find_class("P"));
  const auto call = [&](int d) {
    return vm
        .invoke("P.bump(AI)I", {Value::make_ref(obj), Value::make_int(d)})
        .as_int();
  };
  EXPECT_EQ(call(5), 5);
  EXPECT_EQ(call(7), 12);
  EXPECT_EQ(call(1), 13);
  // First execution runs the base forms once; every later execution uses
  // the rewritten _Quick forms (Table 5's shape: quick >> base).
  EXPECT_EQ(f.profiler.storage_base_ops(), 3u);  // 2 getfield + 1 putfield
  EXPECT_GT(f.profiler.storage_quick_ops(), f.profiler.storage_base_ops());
}

TEST(Interpreter, StaticsPersistAcrossInvocations) {
  Fixture f;
  f.program.classes["C"] =
      bytecode::ClassDef{"C", {}, {{"count", ValueType::Int}}};
  Assembler a(f.program, "C.next()I", "test");
  a.returns(ValueType::Int);
  a.getstatic("C", "count", ValueType::Int).iconst(1).op(Op::iadd);
  a.op(Op::dup).putstatic("C", "count", ValueType::Int);
  a.op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("C.next()I", {}).as_int(), 1);
  EXPECT_EQ(vm.invoke("C.next()I", {}).as_int(), 2);
  EXPECT_EQ(vm.invoke("C.next()I", {}).as_int(), 3);
}

TEST(Interpreter, CallsAndIntrinsics) {
  Fixture f;
  Assembler sq(f.program, "t.square(I)I", "test");
  sq.args({ValueType::Int}).returns(ValueType::Int);
  sq.iload(0).iload(0).op(Op::imul).op(Op::ireturn);
  f.add(sq.build());

  Assembler a(f.program, "t.hyp(II)D", "test");
  a.args({ValueType::Int, ValueType::Int}).returns(ValueType::Double);
  a.iload(0);
  a.invokestatic("t.square(I)I", 1, ValueType::Int);
  a.iload(1);
  a.invokestatic("t.square(I)I", 1, ValueType::Int);
  a.op(Op::iadd).op(Op::i2d);
  a.invokestatic("java.lang.Math.sqrt(D)D", 1, ValueType::Double);
  a.op(Op::dreturn);
  f.add(a.build());

  Interpreter vm(f.program);
  EXPECT_DOUBLE_EQ(
      vm.invoke("t.hyp(II)D", {Value::make_int(3), Value::make_int(4)})
          .as_fp(),
      5.0);
}

TEST(Interpreter, UnresolvedCallIsConfigurationError) {
  Fixture f;
  Assembler a(f.program, "t.calls()V", "test");
  a.returns(ValueType::Void);
  a.invokestatic("no.such.Method()V", 0, ValueType::Void);
  a.op(Op::return_);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_THROW(vm.invoke("t.calls()V", {}), std::runtime_error);
}

TEST(Interpreter, RecursionDepthGuard) {
  Fixture f;
  Assembler a(f.program, "t.rec()V", "test");
  a.returns(ValueType::Void);
  a.invokestatic("t.rec()V", 0, ValueType::Void);
  a.op(Op::return_);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_THROW(vm.invoke("t.rec()V", {}), JvmException);
}

TEST(Interpreter, TableSwitchDispatch) {
  Fixture f;
  Assembler a(f.program, "t.sw(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto c0 = a.new_label(), c1 = a.new_label(), dflt = a.new_label();
  a.iload(0);
  a.tableswitch(0, {c0, c1}, dflt);
  a.bind(c0);
  a.iconst(10).op(Op::ireturn);
  a.bind(c1);
  a.iconst(11).op(Op::ireturn);
  a.bind(dflt);
  a.iconst(-1).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.sw(I)I", {Value::make_int(0)}).as_int(), 10);
  EXPECT_EQ(vm.invoke("t.sw(I)I", {Value::make_int(1)}).as_int(), 11);
  EXPECT_EQ(vm.invoke("t.sw(I)I", {Value::make_int(7)}).as_int(), -1);
  EXPECT_EQ(vm.invoke("t.sw(I)I", {Value::make_int(-2)}).as_int(), -1);
}

TEST(Interpreter, StringsAreCharArrays) {
  Fixture f;
  Assembler a(f.program, "t.len()I", "test");
  a.returns(ValueType::Int);
  a.sconst("hello");
  a.op(Op::arraylength).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_EQ(vm.invoke("t.len()I", {}).as_int(), 5);
}

TEST(Interpreter, ProfilerCountsPerMethodOps) {
  Fixture f;
  Assembler a(f.program, "t.p(I)I", "test-bm");
  a.args({ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iconst(1).op(Op::iadd).op(Op::ireturn);
  f.add(a.build());
  Interpreter vm(f.program, &f.profiler);
  vm.invoke("t.p(I)I", {Value::make_int(1)});
  vm.invoke("t.p(I)I", {Value::make_int(2)});
  const auto& stats = f.profiler.methods().at("t.p(I)I");
  EXPECT_EQ(stats.invocations, 2u);
  EXPECT_EQ(stats.total_ops, 8u);  // 4 instructions x 2 runs
  EXPECT_EQ(stats.benchmark, "test-bm");
  EXPECT_EQ(stats.op_counts[static_cast<int>(Op::iadd)], 2u);
}

TEST(Interpreter, MultiDimensionalArrays) {
  Fixture f;
  Assembler a(f.program, "t.mat(II)D", "test");
  a.args({ValueType::Int, ValueType::Int}).returns(ValueType::Double);
  a.iload(0).iload(1).multianewarray("[[D", 2).astore(2);
  a.aload(2).iconst(1).op(Op::aaload).iconst(2).dconst(1.0).op(Op::dastore);
  a.aload(2).iconst(1).op(Op::aaload).iconst(2).op(Op::daload);
  a.op(Op::dreturn);
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_DOUBLE_EQ(
      vm.invoke("t.mat(II)D", {Value::make_int(3), Value::make_int(4)})
          .as_fp(),
      1.0);
}

TEST(Interpreter, AthrowRaises) {
  Fixture f;
  Assembler a(f.program, "t.boom()V", "test");
  a.returns(ValueType::Void);
  a.new_object("java.lang.RuntimeException");
  a.op(Op::athrow);
  f.program.classes["java.lang.RuntimeException"] =
      bytecode::ClassDef{"java.lang.RuntimeException", {}, {}};
  f.add(a.build());
  Interpreter vm(f.program);
  EXPECT_THROW(vm.invoke("t.boom()V", {}), JvmException);
}

}  // namespace
}  // namespace javaflow::jvm
