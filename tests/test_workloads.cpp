// Workload-suite tests: every benchmark driver runs end-to-end under the
// reference interpreter and validates its own results (FFT round trip,
// LZW round trip, SHA vs host oracle, ...).
#include <gtest/gtest.h>

#include "jvm/interpreter.hpp"
#include "workloads/corpus.hpp"
#include "workloads/generator.hpp"
#include "workloads/workloads.hpp"

namespace javaflow::workloads {
namespace {

struct SuiteHolder {
  static Suite& get() {
    static Suite s = make_suite();
    return s;
  }
};

class BenchmarkDrivers : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkDrivers,
    ::testing::Range<std::size_t>(0, 14),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string n = SuiteHolder::get().benchmarks[info.param].name;
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST_P(BenchmarkDrivers, RunsAndValidates) {
  Suite& suite = SuiteHolder::get();
  ASSERT_LT(GetParam(), suite.benchmarks.size());
  Benchmark& bm = suite.benchmarks[GetParam()];
  jvm::Profiler profiler;
  jvm::Interpreter vm(suite.program, &profiler);
  ASSERT_NO_THROW(bm.run(vm)) << bm.name;
  // The driver exercised at least one of its declared hot methods.
  std::uint64_t hot_ops = 0;
  for (const std::string& name : bm.methods) {
    auto it = profiler.methods().find(name);
    if (it != profiler.methods().end()) hot_ops += it->second.total_ops;
  }
  EXPECT_GT(hot_ops, 0u) << bm.name;
}

TEST(Workloads, SuiteHasFourteenBenchmarkAnalogues) {
  // 8 SpecJvm2008 analogues + 6 SpecJvm98 analogues, matching the paper's
  // two benchmark groups (Tables 3-4).
  Suite& suite = SuiteHolder::get();
  int jvm2008 = 0, jvm98 = 0;
  for (const Benchmark& b : suite.benchmarks) {
    if (b.suite == "SpecJvm2008") ++jvm2008;
    if (b.suite == "SpecJvm98") ++jvm98;
  }
  EXPECT_EQ(jvm2008, 8);
  EXPECT_EQ(jvm98, 6);
  EXPECT_EQ(suite.benchmarks.size(), 14u);
}

TEST(Workloads, HotMethodsExistInProgram) {
  Suite& suite = SuiteHolder::get();
  for (const Benchmark& b : suite.benchmarks) {
    for (const std::string& name : b.methods) {
      EXPECT_NE(suite.program.find(name), nullptr)
          << b.name << " lists missing method " << name;
    }
  }
}

TEST(Workloads, ScientificBenchmarksAreDominatedByOneMethod) {
  // Table 3's observation: each scientific benchmark has 1-2 methods
  // covering nearly all executed ops.
  Suite& suite = SuiteHolder::get();
  jvm::Profiler profiler;
  jvm::Interpreter vm(suite.program, &profiler);
  for (Benchmark& b : suite.benchmarks) {
    if (b.name.rfind("scimark.", 0) == 0) b.run(vm);
  }
  // LU: factor must dominate the benchmark's op count.
  std::uint64_t factor_ops =
      profiler.methods().at("scimark.lu.LU.factor(AA)I").total_ops;
  std::uint64_t lu_total = 0;
  for (const auto& [name, stats] : profiler.methods()) {
    if (stats.benchmark == "scimark.lu.large") lu_total += stats.total_ops;
  }
  EXPECT_GT(factor_ops, lu_total / 2);
}

TEST(Generator, DeterministicForSeed) {
  bytecode::Program p1, p2;
  GeneratorOptions opt;
  opt.target_size = 60;
  const auto m1 = generate_method(p1, "g.a(IIADFJ)I", "bm", 42, opt);
  const auto m2 = generate_method(p2, "g.a(IIADFJ)I", "bm", 42, opt);
  ASSERT_EQ(m1.code.size(), m2.code.size());
  for (std::size_t i = 0; i < m1.code.size(); ++i) {
    EXPECT_EQ(m1.code[i].op, m2.code[i].op) << i;
    EXPECT_EQ(m1.code[i].target, m2.code[i].target) << i;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  bytecode::Program p;
  GeneratorOptions opt;
  opt.target_size = 60;
  const auto m1 = generate_method(p, "g.a(IIADFJ)I", "bm", 1, opt);
  const auto m2 = generate_method(p, "g.b(IIADFJ)I", "bm", 2, opt);
  bool differ = m1.code.size() != m2.code.size();
  for (std::size_t i = 0; !differ && i < m1.code.size(); ++i) {
    differ = m1.code[i].op != m2.code[i].op;
  }
  EXPECT_TRUE(differ);
}

TEST(Generator, RespectsTinyTargets) {
  bytecode::Program p;
  GeneratorOptions opt;
  opt.target_size = 5;
  const auto m = generate_method(p, "g.tiny(IIADFJ)I", "bm", 9, opt);
  EXPECT_LT(m.code.size(), 10u);
  EXPECT_GE(m.code.size(), 2u);
}

TEST(Generator, LoopsAreBottomTest) {
  // Generated loops use JAVAC's shape: a forward goto to a conditional
  // backward latch. Thus every backward branch is conditional.
  bytecode::Program p;
  GeneratorOptions opt;
  opt.target_size = 200;
  opt.loop_weight = 0.5;
  const auto m = generate_method(p, "g.loops(IIADFJ)I", "bm", 77, opt);
  int backward = 0;
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const auto& inst = m.code[i];
    if (inst.is_branch() && inst.target < static_cast<std::int32_t>(i)) {
      ++backward;
      EXPECT_NE(inst.op, bytecode::Op::goto_)
          << "backward goto at " << i << " (head-test loop shape)";
    }
  }
  EXPECT_GT(backward, 0);
}

TEST(Corpus, MatchesTable16Population) {
  const Corpus c = make_corpus({});
  EXPECT_EQ(c.program.methods.size(), 1605u);  // Filter All
  std::size_t filter1 = 0;
  for (const auto& m : c.program.methods) {
    if (m.code.size() > 10 && m.code.size() < 1000) ++filter1;
  }
  // Paper: 915 of 1605; the corpus targets the same ballpark.
  EXPECT_GT(filter1, 800u);
  EXPECT_LT(filter1, 1100u);
}

TEST(Corpus, SizeDistributionMatchesTable9Shape) {
  const Corpus c = make_corpus({});
  std::vector<std::size_t> band;
  for (const auto& m : c.program.methods) {
    if (m.code.size() > 10 && m.code.size() < 1000) {
      band.push_back(m.code.size());
    }
  }
  std::sort(band.begin(), band.end());
  const double median = static_cast<double>(band[band.size() / 2]);
  double mean = 0;
  for (const std::size_t s : band) mean += static_cast<double>(s);
  mean /= static_cast<double>(band.size());
  EXPECT_NEAR(median, 29.0, 12.0);  // Table 9 median 29
  EXPECT_NEAR(mean, 56.0, 18.0);    // Table 9 mean 56
  EXPECT_GT(band.back(), 300u);     // a real large-method tail
}

TEST(Corpus, AllMethodsVerifyAndHaveReturn) {
  const Corpus c = make_corpus({});
  for (const auto& m : c.program.methods) {
    ASSERT_FALSE(m.code.empty()) << m.name;
    // Built through the assembler => verified; spot-check invariants.
    EXPECT_GT(m.max_locals, 0) << m.name;
    bool has_return = false;
    for (const auto& inst : m.code) {
      if (inst.group() == bytecode::Group::Return) has_return = true;
    }
    EXPECT_TRUE(has_return) << m.name;
  }
}

TEST(Corpus, DeterministicForSeed) {
  const Corpus a = make_corpus({});
  const Corpus b = make_corpus({});
  ASSERT_EQ(a.program.methods.size(), b.program.methods.size());
  for (std::size_t i = 0; i < a.program.methods.size(); ++i) {
    EXPECT_EQ(a.program.methods[i].code.size(),
              b.program.methods[i].code.size());
  }
}

}  // namespace
}  // namespace javaflow::workloads
