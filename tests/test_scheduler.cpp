// Heap vs calendar scheduler equality (docs/PERF.md "Engine kernel").
//
// The calendar queue must reproduce the binary heap's strict (tick, seq)
// event order exactly, so every RunMetrics field and every trace event
// is bit-identical between the two schedulers — across the full Table 15
// config matrix, both branch scenarios, the overflow-spill path (events
// scheduled beyond the bucket horizon), and the max_ticks abort path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "obs/event_tracer.hpp"
#include "sim/engine.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// ---- name / env resolution ----

TEST(SchedulerConfig, NamesRoundTrip) {
  using sim::SchedulerKind;
  EXPECT_EQ(sim::scheduler_name(SchedulerKind::Heap), "heap");
  EXPECT_EQ(sim::scheduler_name(SchedulerKind::Calendar), "calendar");
  EXPECT_EQ(sim::scheduler_name(SchedulerKind::Auto), "auto");
  EXPECT_EQ(sim::scheduler_from_name("heap"), SchedulerKind::Heap);
  EXPECT_EQ(sim::scheduler_from_name("calendar"), SchedulerKind::Calendar);
  EXPECT_EQ(sim::scheduler_from_name("auto"), SchedulerKind::Auto);
  EXPECT_FALSE(sim::scheduler_from_name("fifo").has_value());
  EXPECT_FALSE(sim::scheduler_from_name("").has_value());
}

TEST(SchedulerConfig, ResolveReadsEnvironmentWithCalendarDefault) {
  using sim::SchedulerKind;
  // Explicit kinds pass through untouched, whatever the env says.
  ASSERT_EQ(setenv("JAVAFLOW_SCHEDULER", "heap", 1), 0);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::Calendar),
            SchedulerKind::Calendar);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::Heap),
            SchedulerKind::Heap);
  // Auto follows the env...
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::Auto),
            SchedulerKind::Heap);
  ASSERT_EQ(setenv("JAVAFLOW_SCHEDULER", "calendar", 1), 0);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::Auto),
            SchedulerKind::Calendar);
  // ...warns-and-defaults on garbage, and defaults when unset.
  ASSERT_EQ(setenv("JAVAFLOW_SCHEDULER", "bogus", 1), 0);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::Auto),
            SchedulerKind::Calendar);
  ASSERT_EQ(unsetenv("JAVAFLOW_SCHEDULER"), 0);
  EXPECT_EQ(sim::resolve_scheduler(SchedulerKind::Auto),
            SchedulerKind::Calendar);
}

// ---- full-corpus golden equality ----

analysis::Sweep scheduler_sweep(sim::SchedulerKind kind) {
  static const workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }
  analysis::SweepOptions options;
  options.stride = 32;  // the CI smoke stride: a real corpus slice
  options.engine.scheduler = kind;
  return analysis::run_sweep(methods, corpus.program.pool, hot, options);
}

TEST(SchedulerEquality, FullSweepIsBitIdenticalAcrossSchedulers) {
  const analysis::Sweep heap = scheduler_sweep(sim::SchedulerKind::Heap);
  const analysis::Sweep cal = scheduler_sweep(sim::SchedulerKind::Calendar);

  EXPECT_EQ(heap.scheduler, "heap");
  EXPECT_EQ(cal.scheduler, "calendar");
  // All six Table 15 configs, both scenarios, every RunMetrics field.
  ASSERT_EQ(heap.configs.size(), 6u);
  ASSERT_GT(heap.samples.size(), 100u);
  ASSERT_EQ(heap.samples.size(), cal.samples.size());
  for (std::size_t i = 0; i < heap.samples.size(); ++i) {
    ASSERT_EQ(heap.samples[i], cal.samples[i])
        << "sample " << i << " (" << heap.samples[i].method << ", config "
        << heap.samples[i].config_index << ")";
  }
}

// ---- per-run trace equality ----

// A loop over an array load: backward transfer, TAIL replay, memory
// ordering, mesh traffic — the full §6.3 event mix.
Program loop_program() {
  Program p;
  Assembler a(p, "sched.loop(IA)I", "sched");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  return p;
}

struct TracedRun {
  sim::RunMetrics metrics;
  std::vector<obs::TraceEvent> events;
  std::string chrome_json;
};

TracedRun traced_run(const sim::MachineConfig& cfg,
                     sim::SchedulerKind kind, const Program& p,
                     const fabric::DataflowGraph& graph,
                     std::int64_t max_ticks = 4'000'000) {
  sim::EngineOptions options;
  options.scheduler = kind;
  options.max_ticks = max_ticks;
  obs::EventTracer tracer;
  options.tracer = &tracer;
  sim::Engine engine(cfg, options);
  sim::BranchPredictor predictor(sim::BranchPredictor::Scenario::BP1);
  TracedRun out;
  out.metrics = engine.run(p.methods[0], graph, predictor);
  out.events = tracer.events();
  obs::TraceMeta meta;
  meta.method = p.methods[0].name;
  meta.config = cfg.name;
  meta.scenario = "BP-1";
  meta.serial_per_mesh = cfg.serial_per_mesh;
  meta.node_labels.assign(p.methods[0].code.size(), "n");
  std::ostringstream os;
  obs::write_chrome_trace(os, tracer, meta);
  out.chrome_json = os.str();
  return out;
}

TEST(SchedulerEquality, TraceJsonIsIdenticalOnEveryConfig) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    const TracedRun heap =
        traced_run(cfg, sim::SchedulerKind::Heap, p, graph);
    const TracedRun cal =
        traced_run(cfg, sim::SchedulerKind::Calendar, p, graph);
    ASSERT_TRUE(heap.metrics.completed) << cfg.name;
    EXPECT_EQ(heap.metrics, cal.metrics) << cfg.name;
    ASSERT_FALSE(heap.events.empty()) << cfg.name;
    EXPECT_EQ(heap.events, cal.events) << cfg.name;
    EXPECT_EQ(heap.chrome_json, cal.chrome_json) << cfg.name;
  }
}

// ---- overflow-spill edge cases ----

TEST(SchedulerOverflow, EventsBeyondBucketHorizonStayOrdered) {
  // Ring latencies far past the 4096-bucket ceiling force every
  // MemoryRead ServiceDone (and the GPP exception path) through the
  // calendar's overflow spill. The result must not change.
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  sim::MachineConfig cfg = sim::config_by_name("Compact2");
  cfg.ring.memory_read = 100'000;
  cfg.ring.gpp_service = 250'000;
  const TracedRun heap = traced_run(cfg, sim::SchedulerKind::Heap, p, graph);
  const TracedRun cal =
      traced_run(cfg, sim::SchedulerKind::Calendar, p, graph);
  ASSERT_TRUE(heap.metrics.completed);
  // The slow ring really dominated the run — the spill path was taken.
  ASSERT_GT(heap.metrics.ticks, 100'000);
  EXPECT_EQ(heap.metrics, cal.metrics);
  EXPECT_EQ(heap.events, cal.events);
  EXPECT_EQ(heap.chrome_json, cal.chrome_json);
}

TEST(SchedulerOverflow, MaxTicksAbortPathIsIdentical) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const char* name : {"Baseline", "Compact10", "Compact2"}) {
    const sim::MachineConfig cfg = sim::config_by_name(name);
    const TracedRun heap = traced_run(cfg, sim::SchedulerKind::Heap, p,
                                      graph, /*max_ticks=*/120);
    const TracedRun cal = traced_run(cfg, sim::SchedulerKind::Calendar, p,
                                     graph, /*max_ticks=*/120);
    EXPECT_EQ(heap.metrics, cal.metrics) << name;
    EXPECT_EQ(heap.metrics.timed_out, cal.metrics.timed_out) << name;
    EXPECT_EQ(heap.events, cal.events) << name;
  }
}

TEST(SchedulerOverflow, SlowRingAbortCombinesSpillAndTimeout) {
  // Timeout while the only pending events sit in the overflow spill:
  // the calendar must jump its cursor into the spill and abort at the
  // same tick the heap does.
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  sim::MachineConfig cfg = sim::config_by_name("Compact2");
  cfg.ring.memory_read = 100'000;
  const TracedRun heap = traced_run(cfg, sim::SchedulerKind::Heap, p, graph,
                                    /*max_ticks=*/50'000);
  const TracedRun cal = traced_run(cfg, sim::SchedulerKind::Calendar, p,
                                   graph, /*max_ticks=*/50'000);
  EXPECT_TRUE(heap.metrics.timed_out);
  EXPECT_EQ(heap.metrics, cal.metrics);
  EXPECT_EQ(heap.events, cal.events);
}

}  // namespace
}  // namespace javaflow
