// Tests for the two-pass serial address-resolution protocol (§6.2).
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "fabric/loader.hpp"
#include "fabric/resolver.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::fabric {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

Fabric compact_fabric() {
  FabricOptions opt;
  opt.layout = LayoutKind::Compact;
  return Fabric(opt);
}

ResolutionResult resolve_on_compact(const bytecode::Method& m,
                                    const bytecode::ConstantPool& pool) {
  const Fabric f = compact_fabric();
  const Placement pl = load_method(f, m);
  return resolve(f, m, pl, pool);
}

bytecode::Method straight_line(Program& p, int adds) {
  Assembler a(p, "t.line()I", "test");
  a.returns(ValueType::Int);
  a.iconst(1);
  for (int k = 0; k < adds; ++k) {
    a.iconst(k).op(Op::iadd);
  }
  a.op(Op::ireturn);
  return a.build();
}

TEST(Resolver, CompletesAndCountsDflows) {
  Program p;
  const auto m = straight_line(p, 10);
  const ResolutionResult r = resolve_on_compact(m, p.pool);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.total_dflows, r.graph.total_dflows);
  EXPECT_GT(r.total_dflows, 10);
  EXPECT_EQ(r.back_merges, 0);
}

TEST(Resolver, TotalCyclesNearTwiceInstructionCount) {
  // Table 7: the two resolution passes complete "in approximately twice
  // the number of byte code instructions loaded".
  Program p;
  const auto m = straight_line(p, 40);
  const ResolutionResult r = resolve_on_compact(m, p.pool);
  ASSERT_TRUE(r.ok);
  const auto n = static_cast<double>(m.code.size());
  EXPECT_GE(r.total_cycles, static_cast<std::int64_t>(1.5 * n));
  EXPECT_LE(r.total_cycles, static_cast<std::int64_t>(3.0 * n));
}

TEST(Resolver, QueueDepthReflectsNeedBursts) {
  // A deep stack chain makes consumers emit several needs each; queue
  // depth must be >= the largest single-consumer need count (Table 11).
  Program p;
  Assembler a(p, "t.deep()V", "test");
  a.returns(ValueType::Void);
  a.iconst(1).iconst(2).iconst(3).iconst(4);
  a.invokestatic("t.sink(IIII)V", 4, ValueType::Void);  // pop 4 at once
  a.op(Op::return_);
  const auto m = a.build();
  const ResolutionResult r = resolve_on_compact(m, p.pool);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.max_queue_up, 4);
  EXPECT_EQ(r.need_messages, 4 + 0);  // only the call pops
}

TEST(Resolver, JumpStatsSeparateDirections) {
  Program p;
  Assembler a(p, "t.jumps(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label(), skip = a.new_label();
  a.iload(0).ifle(skip);   // forward conditional
  a.iinc(0, 1);
  a.bind(skip);
  a.goto_(test);           // forward goto
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);   // backward conditional
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const ResolutionResult r = resolve_on_compact(m, p.pool);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.forward_jumps.count, 2);
  EXPECT_EQ(r.back_jumps.count, 1);
  EXPECT_GT(r.forward_jumps.avg_length, 0.0);
  EXPECT_GT(r.back_jumps.avg_length, 0.0);
}

TEST(Resolver, BackTargetsExtendPhaseA) {
  Program p;
  Assembler a(p, "t.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const ResolutionResult r = resolve_on_compact(m, p.pool);
  ASSERT_TRUE(r.ok);
  // The back-target address token wraps the loop: phase A exceeds one
  // full circulation.
  EXPECT_GT(r.phase_a_cycles,
            static_cast<std::int64_t>(m.code.size()) + 1);
}

TEST(Resolver, FanoutAndArcStatisticsMatchGraph) {
  Program p;
  Assembler a(p, "t.dup()I", "test");
  a.returns(ValueType::Int);
  a.iconst(3).op(Op::dup).op(Op::imul).op(Op::ireturn);
  const auto m = a.build();
  const ResolutionResult r = resolve_on_compact(m, p.pool);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fanout_max, 2);  // dup feeds both imul sides
  EXPECT_GE(r.arc_avg, 1.0);
  EXPECT_LE(r.arc_avg, 2.0);
}

// Corpus property: resolution succeeds for every kernel and never finds a
// back merge; cycles stay near 2x instructions (the Table 7 observation).
class KernelResolution : public ::testing::TestWithParam<std::size_t> {
 public:
  static const workloads::Corpus& corpus() {
    static workloads::Corpus c = [] {
      workloads::CorpusOptions opt;
      opt.total_methods = 0;
      return workloads::make_corpus(opt);
    }();
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelResolution,
                         ::testing::Range<std::size_t>(0, 66));

TEST_P(KernelResolution, ResolvesCleanly) {
  const auto& c = corpus();
  ASSERT_LT(GetParam(), c.program.methods.size());
  const bytecode::Method& m = c.program.methods[GetParam()];
  const ResolutionResult r = resolve_on_compact(m, c.program.pool);
  ASSERT_TRUE(r.ok) << m.name;
  EXPECT_EQ(r.back_merges, 0) << m.name;
  const auto n = static_cast<std::int64_t>(m.code.size());
  EXPECT_LE(r.total_cycles, 4 * n + 64) << m.name;
  EXPECT_GE(r.total_cycles, n) << m.name;
}

}  // namespace
}  // namespace javaflow::fabric
