// Tests for the label-based assembler.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "bytecode/printer.hpp"

namespace javaflow::bytecode {
namespace {

TEST(Assembler, BuildsStraightLineAdd) {
  // The paper's Figure 21 example: load three registers, add, store.
  Program p;
  Assembler a(p, "example.add3(III)V", "test");
  a.args({ValueType::Int, ValueType::Int, ValueType::Int})
      .returns(ValueType::Void);
  a.iload(0).iload(1).op(Op::iadd).iload(2).op(Op::iadd).istore(3);
  a.op(Op::return_);
  const Method m = a.build();

  ASSERT_EQ(m.code.size(), 7u);
  EXPECT_EQ(m.code[0].op, Op::iload_0);
  EXPECT_EQ(m.code[2].op, Op::iadd);
  EXPECT_EQ(m.code[5].op, Op::istore_3);
  EXPECT_EQ(m.max_stack, 2);
  EXPECT_EQ(m.max_locals, 4);
}

TEST(Assembler, SelectsShortConstantForms) {
  Program p;
  Assembler a(p, "t.c()V", "test");
  a.returns(ValueType::Void);
  a.iconst(0);     // iconst_0
  a.iconst(5);     // iconst_5
  a.iconst(-1);    // iconst_m1
  a.iconst(100);   // bipush
  a.iconst(1000);  // sipush
  a.iconst(70000); // ldc
  for (int k = 0; k < 6; ++k) a.op(Op::pop);
  a.op(Op::return_);
  const Method m = a.build();
  EXPECT_EQ(m.code[0].op, Op::iconst_0);
  EXPECT_EQ(m.code[1].op, Op::iconst_5);
  EXPECT_EQ(m.code[2].op, Op::iconst_m1);
  EXPECT_EQ(m.code[3].op, Op::bipush);
  EXPECT_EQ(m.code[4].op, Op::sipush);
  EXPECT_EQ(m.code[5].op, Op::ldc);
  EXPECT_EQ(p.pool.at(m.code[5].operand).i, 70000);
}

TEST(Assembler, SelectsShortLocalForms) {
  Program p;
  Assembler a(p, "t.l()V", "test");
  a.returns(ValueType::Void);
  a.iconst(1).istore(3).iload(3).istore(4).iload(4).op(Op::pop);
  a.op(Op::return_);
  const Method m = a.build();
  EXPECT_EQ(m.code[1].op, Op::istore_3);
  EXPECT_EQ(m.code[2].op, Op::iload_3);
  EXPECT_EQ(m.code[3].op, Op::istore);  // index 4 has no short form
  EXPECT_EQ(m.code[3].operand, 4);
  EXPECT_EQ(m.max_locals, 5);
}

TEST(Assembler, PatchesForwardAndBackwardLabels) {
  Program p;
  Assembler a(p, "t.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto head = a.new_label();
  auto done = a.new_label();
  a.iconst(0).istore(1);
  a.bind(head);
  a.iload(0).ifle(done);          // forward branch
  a.iinc(1, 1).iinc(0, -1);
  a.goto_(head);                  // backward branch
  a.bind(done);
  a.iload(1).op(Op::ireturn);
  const Method m = a.build();

  const Instruction& jump = m.code[3];
  EXPECT_EQ(jump.op, Op::ifle);
  EXPECT_GT(jump.target, 3);  // forward
  const Instruction& loop = m.code[6];
  EXPECT_EQ(loop.op, Op::goto_);
  EXPECT_EQ(loop.target, 2);  // back to bind(head)
}

TEST(Assembler, CallSitesResolvePopPush) {
  Program p;
  Assembler a(p, "t.call()D", "test");
  a.returns(ValueType::Double);
  a.dconst(2.0);
  a.invokestatic("java.lang.Math.sqrt(D)D", 1, ValueType::Double);
  a.op(Op::dreturn);
  const Method m = a.build();
  EXPECT_EQ(m.code[1].pop, 1);
  EXPECT_EQ(m.code[1].push, 1);

  Assembler b(p, "t.vcall()V", "test");
  b.returns(ValueType::Void);
  b.iconst(1).iconst(2).iconst(3);
  b.invokestatic("t.sink(III)V", 3, ValueType::Void);
  b.op(Op::return_);
  const Method mv = b.build();
  EXPECT_EQ(mv.code[3].pop, 3);
  EXPECT_EQ(mv.code[3].push, 0);
}

TEST(Assembler, UnboundLabelIsAnError) {
  Program p;
  Assembler a(p, "t.bad()V", "test");
  a.returns(ValueType::Void);
  auto l = a.new_label();
  a.goto_(l);
  EXPECT_THROW(a.build(), std::runtime_error);
}

TEST(Assembler, DoubleBindIsAnError) {
  Program p;
  Assembler a(p, "t.bad2()V", "test");
  auto l = a.new_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), std::runtime_error);
}

TEST(Assembler, TableSwitchBuildsDenseTable) {
  Program p;
  Assembler a(p, "t.sw(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto c0 = a.new_label(), c1 = a.new_label(), dflt = a.new_label();
  a.iload(0);
  a.tableswitch(0, {c0, c1}, dflt);
  a.bind(c0);
  a.iconst(10).op(Op::ireturn);
  a.bind(c1);
  a.iconst(11).op(Op::ireturn);
  a.bind(dflt);
  a.iconst(-1).op(Op::ireturn);
  const Method m = a.build();
  ASSERT_EQ(m.switches.size(), 1u);
  const SwitchTable& t = m.switches[0];
  EXPECT_EQ(t.keys, (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(t.targets[0], 2);
  EXPECT_EQ(t.targets[1], 4);
  EXPECT_EQ(t.default_target, 6);
}

TEST(Assembler, DisassemblyRoundTripsNames) {
  Program p;
  Assembler a(p, "t.disasm(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iconst(2).op(Op::imul).op(Op::ireturn);
  const Method m = a.build();
  const std::string text = disassemble(m, p.pool);
  EXPECT_NE(text.find("iload_0"), std::string::npos);
  EXPECT_NE(text.find("imul"), std::string::npos);
  EXPECT_NE(text.find("ireturn"), std::string::npos);
  EXPECT_NE(text.find("t.disasm(I)I"), std::string::npos);
}

TEST(Assembler, InstanceMethodsTrackThisInLocals) {
  Program p;
  p.classes["T"] = ClassDef{"T", {{"x", ValueType::Int}}, {}};
  Assembler a(p, "T.getX()I", "test");
  a.instance().args({ValueType::Ref}).returns(ValueType::Int);
  a.aload(0);
  a.getfield("T", "x", ValueType::Int);
  a.op(Op::ireturn);
  const Method m = a.build();
  EXPECT_FALSE(m.is_static);
  EXPECT_EQ(m.num_args, 1);
  EXPECT_EQ(m.max_stack, 1);
}

}  // namespace
}  // namespace javaflow::bytecode
