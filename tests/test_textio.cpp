// Tests for the .jfasm textual interchange: round trips, diagnostics.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "bytecode/textio.hpp"
#include "jvm/interpreter.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::bytecode {
namespace {

bool methods_equal(const Method& a, const Method& b,
                   const ConstantPool& pa, const ConstantPool& pb) {
  if (a.name != b.name || a.benchmark != b.benchmark ||
      a.num_args != b.num_args || a.return_type != b.return_type ||
      a.is_static != b.is_static || a.max_locals != b.max_locals ||
      a.max_stack != b.max_stack || a.code.size() != b.code.size() ||
      a.switches.size() != b.switches.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.code.size(); ++i) {
    const Instruction& x = a.code[i];
    const Instruction& y = b.code[i];
    if (x.op != y.op || x.pop != y.pop || x.push != y.push ||
        x.target != y.target) {
      return false;
    }
    const OpInfo& info = op_info(x.op);
    if (info.operand == OperandKind::Cp) {
      const CpEntry& ex = pa.at(x.operand);
      const CpEntry& ey = pb.at(y.operand);
      if (ex.kind != ey.kind) return false;
      switch (ex.kind) {
        case CpEntry::Kind::Int:
        case CpEntry::Kind::Long:
          if (ex.i != ey.i) return false;
          break;
        case CpEntry::Kind::Float:
        case CpEntry::Kind::Double:
          if (ex.d != ey.d) return false;
          break;
        case CpEntry::Kind::Str:
          if (ex.s != ey.s) return false;
          break;
        case CpEntry::Kind::Field:
          if (ex.field.class_name != ey.field.class_name ||
              ex.field.field_name != ey.field.field_name ||
              ex.field.type != ey.field.type ||
              ex.field.is_static != ey.field.is_static) {
            return false;
          }
          break;
        case CpEntry::Kind::Method:
          if (ex.method.qualified_name != ey.method.qualified_name ||
              ex.method.arg_values != ey.method.arg_values ||
              ex.method.return_type != ey.method.return_type) {
            return false;
          }
          break;
        case CpEntry::Kind::Class:
          if (ex.cls.class_name != ey.cls.class_name ||
              ex.cls.dims != ey.cls.dims) {
            return false;
          }
          break;
      }
    } else if (info.operand != OperandKind::Switch) {
      if (x.operand != y.operand || x.operand2 != y.operand2) return false;
    }
  }
  for (std::size_t s = 0; s < a.switches.size(); ++s) {
    if (a.switches[s].keys != b.switches[s].keys ||
        a.switches[s].targets != b.switches[s].targets ||
        a.switches[s].default_target != b.switches[s].default_target) {
      return false;
    }
  }
  return true;
}

TEST(TextIO, SimpleMethodRoundTrips) {
  Program p;
  Assembler a(p, "t.sum(I)I", "bm");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(0).istore(1);
  a.goto_(test);
  a.bind(body);
  a.iload(1).iload(0).op(Op::iadd).istore(1);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(1).op(Op::ireturn);
  p.methods.push_back(a.build());

  const std::string text = write_program(p);
  const Program q = parse_program(text);
  ASSERT_EQ(q.methods.size(), 1u);
  EXPECT_TRUE(methods_equal(p.methods[0], q.methods[0], p.pool, q.pool));
}

TEST(TextIO, ConstantsOfEveryKindRoundTrip) {
  Program p;
  p.classes["C"] = ClassDef{"C", {{"f", ValueType::Double}},
                            {{"s", ValueType::Int}}};
  Assembler a(p, "t.konst(A)D", "bm");
  a.args({ValueType::Ref}).returns(ValueType::Double);
  a.iconst(70000).op(Op::pop);                       // ldc int
  a.lconst(0x123456789abcLL).op(Op::pop);            // ldc2_w long
  a.fconst(1.5e-9F).op(Op::pop);                     // ldc float
  a.dconst(4.656612875245797e-10).op(Op::pop);       // ldc2_w double
  a.sconst("he said \"hi\"\n\tdone").op(Op::pop);    // ldc str w/ escapes
  a.getstatic("C", "s", ValueType::Int).op(Op::pop); // field
  a.aload(0).getfield("C", "f", ValueType::Double);  // instance field
  a.invokestatic("java.lang.Math.sqrt(D)D", 1, ValueType::Double);
  a.op(Op::dreturn);
  p.methods.push_back(a.build());

  const Program q = parse_program(write_program(p));
  ASSERT_EQ(q.methods.size(), 1u);
  EXPECT_TRUE(methods_equal(p.methods[0], q.methods[0], p.pool, q.pool));
  // Classes round trip too.
  ASSERT_TRUE(q.classes.contains("C"));
  EXPECT_EQ(q.classes.at("C").instance_fields.size(), 1u);
  EXPECT_EQ(q.classes.at("C").static_fields.size(), 1u);
}

TEST(TextIO, SwitchesRoundTrip) {
  Program p;
  Assembler a(p, "t.sw(I)I", "bm");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto c0 = a.new_label(), c1 = a.new_label(), dflt = a.new_label();
  a.iload(0);
  a.lookupswitch({{5, c0}, {99, c1}}, dflt);
  a.bind(c0);
  a.iconst(1).op(Op::ireturn);
  a.bind(c1);
  a.iconst(2).op(Op::ireturn);
  a.bind(dflt);
  a.iconst(0).op(Op::ireturn);
  p.methods.push_back(a.build());

  const Program q = parse_program(write_program(p));
  EXPECT_TRUE(methods_equal(p.methods[0], q.methods[0], p.pool, q.pool));
}

TEST(TextIO, ParsedProgramExecutesIdentically) {
  // The strongest round-trip check: a parsed kernel computes the same
  // answer under the interpreter.
  workloads::CorpusOptions opt;
  opt.total_methods = 0;
  workloads::Corpus corpus = workloads::make_corpus(opt);
  Program parsed = parse_program(write_program(corpus.program));
  ASSERT_EQ(parsed.methods.size(), corpus.program.methods.size());

  jvm::Interpreter vm(parsed);
  const jvm::Ref rnd =
      vm.heap().new_object(*parsed.find_class("scimark.utils.Random"));
  vm.invoke("scimark.utils.Random.initialize(I)V",
            {jvm::Value::make_ref(rnd), jvm::Value::make_int(113)});
  const auto v1 = vm.invoke("scimark.utils.Random.nextDouble()D",
                            {jvm::Value::make_ref(rnd)});
  // Same value the original program computes.
  jvm::Interpreter vm0(corpus.program);
  const jvm::Ref rnd0 = vm0.heap().new_object(
      *corpus.program.find_class("scimark.utils.Random"));
  vm0.invoke("scimark.utils.Random.initialize(I)V",
             {jvm::Value::make_ref(rnd0), jvm::Value::make_int(113)});
  const auto v0 = vm0.invoke("scimark.utils.Random.nextDouble()D",
                             {jvm::Value::make_ref(rnd0)});
  EXPECT_DOUBLE_EQ(v1.as_fp(), v0.as_fp());
}

TEST(TextIO, WholeKernelCorpusRoundTrips) {
  workloads::CorpusOptions opt;
  opt.total_methods = 0;
  workloads::Corpus corpus = workloads::make_corpus(opt);
  const Program q = parse_program(write_program(corpus.program));
  ASSERT_EQ(q.methods.size(), corpus.program.methods.size());
  for (std::size_t i = 0; i < q.methods.size(); ++i) {
    EXPECT_TRUE(methods_equal(corpus.program.methods[i], q.methods[i],
                              corpus.program.pool, q.pool))
        << corpus.program.methods[i].name;
  }
}

TEST(TextIO, MalformedInputsReportLineNumbers) {
  EXPECT_THROW(parse_program("bogus"), std::runtime_error);
  EXPECT_THROW(parse_program(".class X\n.field a int\n"),  // no .end
               std::runtime_error);
  EXPECT_THROW(parse_program(".method m\n  0: frobnicate\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(parse_program(".method m\n  5: nop\n.end\n"),  // bad index
               std::runtime_error);
  try {
    parse_program(".method m\n.returns void\n  0: iadd\n  1: return_\n.end\n");
    FAIL() << "verifier should reject stack underflow";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("verification"), std::string::npos);
  }
}

TEST(TextIO, CommentsAndBlankLinesIgnored) {
  const Program q = parse_program(
      "# a comment\n"
      "\n"
      ".method t.one()I\n"
      "; another comment\n"
      ".returns int\n"
      "  0: iconst_1\n"
      "  1: ireturn\n"
      ".end\n");
  ASSERT_EQ(q.methods.size(), 1u);
  EXPECT_EQ(q.methods[0].code.size(), 2u);
}

}  // namespace
}  // namespace javaflow::bytecode
