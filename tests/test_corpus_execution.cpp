// Corpus-wide execution properties — the strongest end-to-end guarantees:
// a sampled slice of the full 1605-method population must deploy, resolve
// with zero back merges, and run to completion on every configuration.
#include <gtest/gtest.h>

#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

const workloads::Corpus& corpus() {
  static workloads::Corpus c = workloads::make_corpus({});
  return c;
}

// One parameterized case per configuration; each samples the corpus.
class CorpusOnConfig : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Table15, CorpusOnConfig,
                         ::testing::Values("Baseline", "Compact10",
                                           "Compact4", "Compact2",
                                           "Sparse2", "Hetero2"),
                         [](const auto& info) { return info.param; });

TEST_P(CorpusOnConfig, SampledMethodsRunToCompletion) {
  const auto& c = corpus();
  JavaFlowMachine machine(sim::config_by_name(GetParam()));
  int executed = 0, skipped = 0;
  for (std::size_t i = 0; i < c.program.methods.size(); i += 23) {
    const bytecode::Method& m = c.program.methods[i];
    const DeployedMethod d = machine.deploy(m, c.program.pool);
    if (!d.placement.fits) {
      ++skipped;  // oversized tail of the population
      continue;
    }
    ASSERT_TRUE(d.resolution.ok) << m.name;
    EXPECT_EQ(d.resolution.back_merges, 0) << m.name;
    for (const auto scenario : {sim::BranchPredictor::Scenario::BP1,
                                sim::BranchPredictor::Scenario::BP2}) {
      const sim::RunMetrics r = machine.execute(d, scenario);
      ASSERT_TRUE(r.completed) << m.name << " on " << GetParam();
      EXPECT_FALSE(r.timed_out) << m.name;
      EXPECT_GT(r.instructions_fired, 0) << m.name;
      EXPECT_LE(r.coverage(), 1.0) << m.name;
      ++executed;
    }
  }
  EXPECT_GT(executed, 100);
  // Only the >1000-instruction slice may fail to fit, and only on the
  // node-hungry layouts.
  EXPECT_LT(skipped, 6);
}

TEST(CorpusExecution, ResolutionCyclesTrackInstructionCount) {
  // Table 7's summary property over a corpus sample: resolution completes
  // in roughly twice the instruction count.
  const auto& c = corpus();
  JavaFlowMachine machine(sim::config_by_name("Compact2"));
  double ratio_sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < c.program.methods.size(); i += 31) {
    const bytecode::Method& m = c.program.methods[i];
    const DeployedMethod d = machine.deploy(m, c.program.pool);
    if (!d.ok()) continue;
    ratio_sum += static_cast<double>(d.resolution.total_cycles) /
                 static_cast<double>(m.code.size());
    ++n;
  }
  ASSERT_GT(n, 20);
  const double mean_ratio = ratio_sum / n;
  EXPECT_GT(mean_ratio, 1.5);
  EXPECT_LT(mean_ratio, 3.0);
}

TEST(CorpusExecution, BaselineDominatesHetero) {
  // The dissertation's headline: Hetero2 lands near 40 % of Baseline.
  const auto& c = corpus();
  JavaFlowMachine baseline(sim::config_by_name("Baseline"));
  JavaFlowMachine hetero(sim::config_by_name("Hetero2"));
  double fm_sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < c.program.methods.size(); i += 17) {
    const bytecode::Method& m = c.program.methods[i];
    const DeployedMethod db = baseline.deploy(m, c.program.pool);
    const DeployedMethod dh = hetero.deploy(m, c.program.pool);
    if (!db.ok() || !dh.ok()) continue;
    const auto rb =
        baseline.execute(db, sim::BranchPredictor::Scenario::BP1);
    const auto rh = hetero.execute(dh, sim::BranchPredictor::Scenario::BP1);
    if (!rb.completed || !rh.completed || rb.ipc() <= 0) continue;
    fm_sum += rh.ipc() / rb.ipc();
    ++n;
  }
  ASSERT_GT(n, 50);
  const double fm = fm_sum / n;
  EXPECT_GT(fm, 0.30);
  EXPECT_LT(fm, 0.60);  // the paper reports ~0.40-0.47
}

}  // namespace
}  // namespace javaflow
