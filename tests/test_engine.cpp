// Tests for the execution engine: firing rules, token bundle mechanics,
// loop replay, predictor behaviour, and cross-configuration ordering.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "sim/engine.hpp"

namespace javaflow::sim {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

RunMetrics run_on(const std::string& config, const bytecode::Method& m,
                  const bytecode::ConstantPool& pool,
                  BranchPredictor::Scenario scenario =
                      BranchPredictor::Scenario::BP1) {
  const auto graph = fabric::build_dataflow_graph(m, pool);
  Engine engine(config_by_name(config));
  BranchPredictor predictor(scenario);
  return engine.run(m, graph, predictor);
}

bytecode::Method trivial(Program& p) {
  Assembler a(p, "t.t()I", "test");
  a.returns(ValueType::Int);
  a.iconst(1).op(Op::ireturn);
  return a.build();
}

TEST(Engine, TrivialMethodCompletes) {
  Program p;
  const auto m = trivial(p);
  for (const auto& cfg : table15_configs()) {
    Engine engine(cfg);
    BranchPredictor bp(BranchPredictor::Scenario::BP1);
    const auto graph = fabric::build_dataflow_graph(m, p.pool);
    const RunMetrics r = engine.run(m, graph, bp);
    EXPECT_TRUE(r.completed) << cfg.name;
    EXPECT_EQ(r.instructions_fired, 2) << cfg.name;
    EXPECT_DOUBLE_EQ(r.coverage(), 1.0) << cfg.name;
  }
}

TEST(Engine, StraightLineFiresEverything) {
  Program p;
  Assembler a(p, "t.line()I", "test");
  a.returns(ValueType::Int);
  a.iconst(1).iconst(2).op(Op::iadd).iconst(3).op(Op::imul);
  a.op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.instructions_fired,
            static_cast<std::int64_t>(m.code.size()));
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(Engine, RegisterTokensDriveLocalOps) {
  // read-modify-write chain through registers: iload -> iadd -> istore,
  // then a dependent iload downstream must see the new token.
  Program p;
  Assembler a(p, "t.regs(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iconst(1).op(Op::iadd).istore(0);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.instructions_fired,
            static_cast<std::int64_t>(m.code.size()));
}

TEST(Engine, BackJumpLoopsTenTimesPerVisit) {
  // Bottom-test loop: the conditional back jump is taken 9 times, so the
  // two-instruction body fires 9 times (§7.3's 90 % rule).
  Program p;
  Assembler a(p, "t.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);        // 0
  a.bind(body);
  a.iinc(0, 1);         // 1 (the body)
  a.bind(test);
  a.iload(0);           // 2
  a.ifgt(body);         // 3 — backward conditional
  a.iload(0);           // 4
  a.op(Op::ireturn);    // 5
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  ASSERT_TRUE(r.completed);
  // goto fires once; body(iinc) 9x; iload@2 and ifgt 10x; exit pair once.
  EXPECT_EQ(r.instructions_fired, 1 + 9 + 10 + 10 + 1 + 1);
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(Engine, ForwardBranchAlternatesBetweenScenarios) {
  // BP1 takes the first forward jump, skipping the arm; BP2 falls
  // through, covering it (§7.3).
  Program p;
  Assembler a(p, "t.fwd(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto skip = a.new_label();
  a.iload(0).ifle(skip);  // 0,1
  a.iinc(0, 1);           // 2 — only on the not-taken path
  a.iinc(0, 2);           // 3
  a.bind(skip);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics bp1 =
      run_on("Compact2", m, p.pool, BranchPredictor::Scenario::BP1);
  const RunMetrics bp2 =
      run_on("Compact2", m, p.pool, BranchPredictor::Scenario::BP2);
  ASSERT_TRUE(bp1.completed);
  ASSERT_TRUE(bp2.completed);
  EXPECT_LT(bp1.coverage(), 1.0);      // arm skipped
  EXPECT_DOUBLE_EQ(bp2.coverage(), 1.0);
  EXPECT_EQ(bp2.instructions_fired - bp1.instructions_fired, 2);
}

TEST(Engine, MergeConsumerReceivesExactlyOneOperand) {
  Program p;
  Assembler a(p, "t.merge(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto els = a.new_label(), join = a.new_label();
  a.iload(0).ifle(els);
  a.iconst(10).goto_(join);
  a.bind(els);
  a.iconst(20);
  a.bind(join);
  a.op(Op::ireturn);
  const auto m = a.build();
  for (const auto scenario :
       {BranchPredictor::Scenario::BP1, BranchPredictor::Scenario::BP2}) {
    const RunMetrics r = run_on("Compact2", m, p.pool, scenario);
    EXPECT_TRUE(r.completed);
  }
}

TEST(Engine, MemoryOpsSerializeViaMemoryToken) {
  // Two dependent array reads: the MEMORY token ordering plus data
  // dependence forces the second read to start after the first returns.
  Program p;
  Assembler a(p, "t.mem(A)I", "test");
  a.args({ValueType::Ref}).returns(ValueType::Int);
  a.aload(0).iconst(0).op(Op::iaload);   // 0,1,2
  a.aload(0).iconst(1).op(Op::iaload);   // 3,4,5
  a.op(Op::iadd).op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  ASSERT_TRUE(r.completed);
  const auto& cfg = config_by_name("Compact2");
  // At least two full memory round trips must fit in the elapsed time.
  EXPECT_GE(r.mesh_cycles, 2 * cfg.ring.memory_read);
}

TEST(Engine, CallsStallOnlyTheTail) {
  Program p;
  Assembler a(p, "t.call()I", "test");
  a.returns(ValueType::Int);
  a.invokestatic("lib.f()I", 0, ValueType::Int);
  a.op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  ASSERT_TRUE(r.completed);
  const auto& cfg = config_by_name("Compact2");
  EXPECT_GE(r.mesh_cycles, cfg.ring.gpp_service);
}

TEST(Engine, SwitchRoutesThroughTableTargets) {
  Program p;
  Assembler a(p, "t.sw(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto c0 = a.new_label(), c1 = a.new_label(), dflt = a.new_label();
  a.iload(0);
  a.tableswitch(0, {c0, c1}, dflt);
  a.bind(c0);
  a.iconst(10).op(Op::ireturn);
  a.bind(c1);
  a.iconst(11).op(Op::ireturn);
  a.bind(dflt);
  a.iconst(-1).op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  EXPECT_TRUE(r.completed);
}

TEST(Engine, IpcOrderingAcrossConfigurations) {
  // Build a method with loops, storage and float work, then check the
  // Table 22 ordering: Baseline >= Compact10 >= Compact4 >= Compact2 >=
  // Sparse2 and Hetero2 below Compact2.
  Program p;
  Assembler a(p, "t.work(IA)I", "test");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload);
  a.iconst(3).op(Op::imul).istore(0);
  a.iload(0).op(Op::i2d).dconst(0.5).op(Op::dmul).op(Op::d2i).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const auto graph = fabric::build_dataflow_graph(m, p.pool);

  std::vector<double> ipc;
  for (const auto& cfg : table15_configs()) {
    Engine engine(cfg);
    BranchPredictor bp(BranchPredictor::Scenario::BP1);
    const RunMetrics r = engine.run(m, graph, bp);
    ASSERT_TRUE(r.completed) << cfg.name;
    ipc.push_back(r.ipc());
  }
  EXPECT_GE(ipc[0], ipc[1]);  // Baseline >= Compact10
  EXPECT_GE(ipc[1], ipc[2]);  // Compact10 >= Compact4
  EXPECT_GE(ipc[2], ipc[3]);  // Compact4 >= Compact2
  EXPECT_GE(ipc[3], ipc[4]);  // Compact2 >= Sparse2
  EXPECT_GT(ipc[3], ipc[5]);  // Compact2 > Hetero2
}

TEST(Engine, DeterministicAcrossRuns) {
  Program p;
  Assembler a(p, "t.det(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.iinc(0, 1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r1 = run_on("Hetero2", m, p.pool);
  const RunMetrics r2 = run_on("Hetero2", m, p.pool);
  EXPECT_EQ(r1.ticks, r2.ticks);
  EXPECT_EQ(r1.instructions_fired, r2.instructions_fired);
  EXPECT_EQ(r1.mesh_messages, r2.mesh_messages);
}

TEST(Engine, OversizedMethodDoesNotFit) {
  Program p;
  Assembler a(p, "t.big()I", "test");
  a.returns(ValueType::Int);
  for (int k = 0; k < 6000; ++k) a.iinc(0, 1);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const auto graph = fabric::build_dataflow_graph(m, p.pool);
  MachineConfig cfg = config_by_name("Hetero2");
  cfg.capacity = 4000;
  Engine engine(cfg);
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  const RunMetrics r = engine.run(m, graph, bp);
  EXPECT_FALSE(r.fits);
  EXPECT_FALSE(r.completed);
}

TEST(Engine, ParallelismBoundedByOne) {
  Program p;
  const auto m = trivial(p);
  const RunMetrics r = run_on("Baseline", m, p.pool);
  EXPECT_GE(r.parallel_2plus(), 0.0);
  EXPECT_LE(r.parallel_2plus(), 1.0);
  EXPECT_GE(r.ticks_exec_1plus, r.ticks_exec_2plus);
}

TEST(BranchPredictorTest, BackJumpNineOfTen) {
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  int taken = 0;
  for (int k = 0; k < 20; ++k) {
    if (bp.decide(7, BranchKind::Backward)) ++taken;
  }
  EXPECT_EQ(taken, 18);  // 9 of every 10
}

TEST(BranchPredictorTest, LoopExitOneOfTen) {
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  int taken = 0;
  for (int k = 0; k < 20; ++k) {
    if (bp.decide(7, BranchKind::LoopExit)) ++taken;
  }
  EXPECT_EQ(taken, 2);  // exits on the 10th visit
}

TEST(BranchPredictorTest, ForwardAlternatesWithScenarioPhase) {
  BranchPredictor bp1(BranchPredictor::Scenario::BP1);
  BranchPredictor bp2(BranchPredictor::Scenario::BP2);
  EXPECT_TRUE(bp1.decide(3, BranchKind::Forward));
  EXPECT_FALSE(bp1.decide(3, BranchKind::Forward));
  EXPECT_TRUE(bp1.decide(3, BranchKind::Forward));
  EXPECT_FALSE(bp2.decide(3, BranchKind::Forward));
  EXPECT_TRUE(bp2.decide(3, BranchKind::Forward));
}

TEST(BranchPredictorTest, SitesAreIndependent) {
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  EXPECT_TRUE(bp.decide(1, BranchKind::Forward));
  EXPECT_TRUE(bp.decide(2, BranchKind::Forward));  // fresh site
  EXPECT_FALSE(bp.decide(1, BranchKind::Forward));
}

TEST(BranchPredictorTest, TraceModeReplaysOutcomes) {
  BranchPredictor bp(BranchPredictor::Scenario::Trace);
  bp.feed_trace(4, true);
  bp.feed_trace(4, false);
  EXPECT_TRUE(bp.decide(4, BranchKind::Forward));
  EXPECT_FALSE(bp.decide(4, BranchKind::Forward));
  // Exhausted: loop exits are taken so execution terminates.
  EXPECT_FALSE(bp.decide(4, BranchKind::Forward));
  EXPECT_TRUE(bp.decide(4, BranchKind::LoopExit));
}

TEST(BranchClassification, DetectsHeadTestLoops) {
  Program p;
  Assembler a(p, "t.head(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto head = a.new_label(), done = a.new_label();
  a.bind(head);
  a.iload(0).ifle(done);   // 0,1 — loop exit (head test)
  a.iinc(0, -1);           // 2
  a.goto_(head);           // 3 — backward latch
  a.bind(done);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const auto kinds = classify_branches(m);
  EXPECT_EQ(static_cast<BranchKind>(kinds[1]), BranchKind::LoopExit);
  EXPECT_EQ(static_cast<BranchKind>(kinds[3]), BranchKind::Backward);
}

TEST(BranchClassification, PlainForwardBranchStaysForward) {
  Program p;
  Assembler a(p, "t.iff(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto skip = a.new_label();
  a.iload(0).ifle(skip);
  a.iinc(0, 1);
  a.bind(skip);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const auto kinds = classify_branches(m);
  EXPECT_EQ(static_cast<BranchKind>(kinds[1]), BranchKind::Forward);
}

TEST(Engine, HeadTestLoopAlsoItersTenTimes) {
  // The LoopExit rule makes the paper's 90 % trip count apply to
  // head-test loops too.
  Program p;
  Assembler a(p, "t.head(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto head = a.new_label(), done = a.new_label();
  a.bind(head);
  a.iload(0).ifle(done);
  a.iinc(0, -1);
  a.goto_(head);
  a.bind(done);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const RunMetrics r = run_on("Compact2", m, p.pool);
  ASSERT_TRUE(r.completed);
  // Test executes 10x (9 stay + 1 exit): iload+ifle 10x, body 9x,
  // goto 9x, exit pair once.
  EXPECT_EQ(r.instructions_fired, 10 + 10 + 9 + 9 + 1 + 1);
}

}  // namespace
}  // namespace javaflow::sim
