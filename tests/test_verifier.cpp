// Tests for the stack-discipline verifier (paper §3.6 restrictions).
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "bytecode/verifier.hpp"

namespace javaflow::bytecode {
namespace {

// Builds a method without running the assembler's verifier, so invalid
// shapes can be constructed.
Method raw(std::vector<Instruction> code, std::uint16_t locals = 4,
           ValueType ret = ValueType::Void) {
  Method m;
  m.name = "raw";
  m.max_locals = locals;
  m.return_type = ret;
  for (Instruction& i : code) {
    const OpInfo& info = op_info(i.op);
    if (info.pop != kVarCount) i.pop = info.pop;
    if (info.push != kVarCount) i.push = info.push;
  }
  m.code = std::move(code);
  return m;
}

TEST(Verifier, AcceptsMinimalMethod) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.max_stack, 0);
}

TEST(Verifier, RejectsEmptyMethod) {
  ConstantPool pool;
  Method m;
  m.name = "empty";
  EXPECT_FALSE(verify(m, pool).ok);
}

TEST(Verifier, RejectsStackUnderflow) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::iadd}, {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("underflow"), std::string::npos);
}

TEST(Verifier, RejectsFallOffEnd) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::iconst_0}, {.op = Op::pop}});
  EXPECT_FALSE(verify(m, pool).ok);
}

TEST(Verifier, RejectsOperandTypeMismatch) {
  ConstantPool pool;
  // iadd on (int, double).
  const Method m = raw({{.op = Op::iconst_1},
                        {.op = Op::dconst_1},
                        {.op = Op::iadd},
                        {.op = Op::pop},
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("mismatch"), std::string::npos);
}

// Figure 9: a merge point whose two predecessors leave different stack
// shapes must be rejected.
TEST(Verifier, RejectsFigure9MergeShapeMismatch) {
  ConstantPool pool;
  // 0: iconst_0
  // 1: ifeq -> 4     (consumes it; taken path arrives at 4 with depth 0)
  // 2: iconst_1      (fall-through pushes a value)
  // 3: goto -> 4     (arrives at 4 with depth 1)  => mismatch at 4
  // 4: return
  const Method m = raw({{.op = Op::iconst_0},
                        {.op = Op::ifeq, .target = 4},
                        {.op = Op::iconst_1},
                        {.op = Op::goto_, .target = 4},
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("merge"), std::string::npos);
}

TEST(Verifier, AcceptsMergeWithMatchingShapes) {
  ConstantPool pool;
  // Both paths push exactly one int before merging.
  // 0: iconst_0
  // 1: ifeq -> 4
  // 2: iconst_1
  // 3: goto -> 5
  // 4: iconst_2
  // 5: pop
  // 6: return
  const Method m = raw({{.op = Op::iconst_0},
                        {.op = Op::ifeq, .target = 4},
                        {.op = Op::iconst_1},
                        {.op = Op::goto_, .target = 5},
                        {.op = Op::iconst_2},
                        {.op = Op::pop},
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.entry_depth[5], 1);
}

TEST(Verifier, MergeTypesMustMatchNotJustDepth) {
  ConstantPool pool;
  // One path pushes int, the other double — same depth, different type.
  const Method m = raw({{.op = Op::iconst_0},
                        {.op = Op::ifeq, .target = 4},
                        {.op = Op::iconst_1},
                        {.op = Op::goto_, .target = 5},
                        {.op = Op::dconst_1},
                        {.op = Op::pop},
                        {.op = Op::return_}});
  EXPECT_FALSE(verify(m, pool).ok);
}

TEST(Verifier, BackEdgeMustPreserveStackShape) {
  ConstantPool pool;
  // Loop that leaks one stack value per iteration must be rejected.
  // 0: iconst_0
  // 1: iconst_0
  // 2: ifeq -> 0   (back edge arrives at 0 with depth 1; entry had 0)
  // 3: pop
  // 4: return
  const Method m = raw({{.op = Op::iconst_0},
                        {.op = Op::iconst_0},
                        {.op = Op::ifeq, .target = 0},
                        {.op = Op::pop},
                        {.op = Op::return_}});
  EXPECT_FALSE(verify(m, pool).ok);
}

TEST(Verifier, AcceptsWellFormedLoop) {
  Program p;
  Assembler a(p, "t.sum(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto head = a.new_label();
  auto done = a.new_label();
  a.iconst(0).istore(1);
  a.bind(head);
  a.iload(0).ifle(done);
  a.iload(1).iload(0).op(Op::iadd).istore(1);
  a.iinc(0, -1);
  a.goto_(head);
  a.bind(done);
  a.iload(1).op(Op::ireturn);
  EXPECT_NO_THROW(a.build());
}

TEST(Verifier, RejectsJsrRet) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::jsr, .target = 2},
                        {.op = Op::return_},
                        {.op = Op::pop},
                        {.op = Op::ret},
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("jsr"), std::string::npos);
}

TEST(Verifier, RejectsBranchOutsideMethod) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::goto_, .target = 99},
                        {.op = Op::return_}});
  EXPECT_FALSE(verify(m, pool).ok);
}

TEST(Verifier, RejectsReturnArityMismatch) {
  ConstantPool pool;
  // Method declared int-returning but uses bare return.
  const Method m = raw({{.op = Op::return_}}, 4, ValueType::Int);
  EXPECT_FALSE(verify(m, pool).ok);
}

TEST(Verifier, ComputesMaxStackOverAllPaths) {
  ConstantPool pool;
  // Deep push on one path only.
  const Method m = raw({{.op = Op::iconst_0},
                        {.op = Op::ifeq, .target = 7},
                        {.op = Op::iconst_1},
                        {.op = Op::iconst_2},
                        {.op = Op::iconst_3},
                        {.op = Op::iadd},
                        {.op = Op::iadd},   // depth peaked at 3
                        // target 7 below; both paths end separately
                        {.op = Op::return_}});
  // Path A: 0,1(not taken),2,3,4 -> depth 3, then adds, then falls into 7
  // with depth 1 — but taken path arrives at 7 with depth 0: mismatch.
  // Use a shape-correct variant instead:
  const Method ok = raw({{.op = Op::iconst_1},
                         {.op = Op::iconst_2},
                         {.op = Op::iconst_3},
                         {.op = Op::iadd},
                         {.op = Op::iadd},
                         {.op = Op::pop},
                         {.op = Op::return_}});
  const VerifyResult r = verify(ok, pool);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.max_stack, 3);
  EXPECT_FALSE(verify(m, pool).ok);  // the mismatched variant is invalid
}

TEST(Verifier, GenericStackOpsBindTypes) {
  ConstantPool pool;
  // swap on (int, double) then use them per their post-swap types.
  const Method m = raw({{.op = Op::iconst_1},
                        {.op = Op::dconst_1},
                        {.op = Op::swap},
                        {.op = Op::pop},   // pops the int
                        {.op = Op::pop},   // pops the double
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_TRUE(r.ok) << r.error;
  // dup must duplicate the double faithfully.
  const Method m2 = raw({{.op = Op::dconst_1},
                         {.op = Op::dup},
                         {.op = Op::dadd},
                         {.op = Op::pop},
                         {.op = Op::return_}});
  EXPECT_TRUE(verify(m2, pool).ok);
}

TEST(Verifier, EntryStateExposedForAnalysis) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::iconst_1},
                        {.op = Op::iconst_2},
                        {.op = Op::iadd},
                        {.op = Op::pop},
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.entry_depth[0], 0);
  EXPECT_EQ(r.entry_depth[2], 2);
  ASSERT_EQ(r.entry_stack[2].size(), 2u);
  EXPECT_EQ(r.entry_stack[2][0], ValueType::Int);
}

TEST(Verifier, UnreachableCodeIsTolerated) {
  ConstantPool pool;
  const Method m = raw({{.op = Op::goto_, .target = 2},
                        {.op = Op::nop},  // dead
                        {.op = Op::return_}});
  const VerifyResult r = verify(m, pool);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.entry_depth[1], -1);
}

}  // namespace
}  // namespace javaflow::bytecode
