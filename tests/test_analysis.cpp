// Tests for the analysis layer: statistics, mixes, filters, Figure of
// Merit normalization, and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/dataflow_analysis.hpp"
#include "analysis/figure_of_merit.hpp"
#include "analysis/mix.hpp"
#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "bytecode/assembler.hpp"
#include "jvm/interpreter.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({3.0, 1.0, 2.0, 4.0, 10.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_NEAR(s.std_dev, 3.5355, 1e-3);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, CorrelationSigns) {
  EXPECT_NEAR(correlation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-9);
  EXPECT_NEAR(correlation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(correlation({1, 1, 1}, {2, 5, 9}), 0.0);  // constant x
}

TEST(Filters, MatchTable16Definitions) {
  EXPECT_TRUE(filter_accepts(Filter::All, 5, false));
  EXPECT_TRUE(filter_accepts(Filter::All, 5000, false));
  EXPECT_FALSE(filter_accepts(Filter::Filter1, 10, false));   // strict >10
  EXPECT_TRUE(filter_accepts(Filter::Filter1, 11, false));
  EXPECT_FALSE(filter_accepts(Filter::Filter1, 1000, false)); // strict <1000
  EXPECT_TRUE(filter_accepts(Filter::Filter1, 999, true));
  EXPECT_FALSE(filter_accepts(Filter::Filter2, 500, false));  // needs hot
  EXPECT_TRUE(filter_accepts(Filter::Filter2, 500, true));
  EXPECT_FALSE(filter_accepts(Filter::Filter2, 5, true));     // size band
}

TEST(Mix, ProfilerDrivenTables) {
  Program p;
  Assembler a(p, "bm1.hot()I", "bm1");
  a.returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(100).istore(0);
  a.goto_(test);
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  Assembler b(p, "bm1.cold()I", "bm1");
  b.returns(ValueType::Int);
  b.iconst(1).op(Op::ireturn);
  p.methods.push_back(b.build());

  jvm::Profiler profiler;
  jvm::Interpreter vm(p, &profiler);
  vm.invoke("bm1.hot()I", {});
  vm.invoke("bm1.cold()I", {});

  const auto util = method_utilization(profiler);
  ASSERT_EQ(util.size(), 1u);
  EXPECT_EQ(util[0].benchmark, "bm1");
  EXPECT_EQ(util[0].methods_used, 2u);
  EXPECT_EQ(util[0].methods_for_90pct, 1u);  // the loop dominates

  const auto top = top_methods(profiler, 4);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].top[0].method, "bm1.hot()I");
  EXPECT_GT(top[0].top[0].share, 0.9);

  const auto mix = dynamic_mix_of_hot_methods(profiler);
  ASSERT_EQ(mix.size(), 1u);
  double total = 0;
  for (const double f : mix[0].fractions) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The loop is all locals/iinc + control.
  EXPECT_GT(mix[0].fractions[static_cast<int>(
                bytecode::DynamicMixCategory::LocalsStack)],
            0.4);
}

TEST(Mix, QuickImpactCountsRewrites) {
  Program p;
  p.classes["C"] = bytecode::ClassDef{"C", {}, {{"f", ValueType::Int}}};
  Assembler a(p, "bm.q()I", "bm");
  a.returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(50).istore(0);
  a.goto_(test);
  a.bind(body);
  a.getstatic("C", "f", ValueType::Int);
  a.iconst(1).op(Op::iadd);
  a.putstatic("C", "f", ValueType::Int);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.getstatic("C", "f", ValueType::Int);
  a.op(Op::ireturn);
  p.methods.push_back(a.build());

  jvm::Profiler profiler;
  jvm::Interpreter vm(p, &profiler);
  vm.invoke("bm.q()I", {});
  const QuickImpact q = quick_impact(profiler);
  EXPECT_EQ(q.storage_base, 3u);  // each site resolved exactly once
  EXPECT_GT(q.storage_quick, 90u);
  // Table 5's shape: ~97-99 % of storage executions are quick.
  EXPECT_GT(q.quick_percentage, 0.9);
}

TEST(Mix, StaticMixRowsSumToOne) {
  Program p;
  Assembler a(p, "bm.s(A)V", "bmA");
  a.args({ValueType::Ref}).returns(ValueType::Void);
  a.aload(0).iconst(0).op(Op::iaload).istore(1);
  a.iload(1).op(Op::i2d).dconst(0.5).op(Op::dmul).op(Op::d2i).istore(1);
  a.op(Op::return_);
  p.methods.push_back(a.build());
  const auto rows =
      static_mix({&p.methods[0]});
  ASSERT_EQ(rows.size(), 2u);  // bmA + Total
  for (const auto& row : rows) {
    EXPECT_NEAR(row.arith + row.fp + row.control + row.storage, 1.0, 1e-9);
  }
  EXPECT_GT(rows[0].storage, 0.0);
  EXPECT_GT(rows[0].fp, 0.0);
}

TEST(DataflowAnalysis, AggregatesPerBenchmark) {
  Program p;
  Assembler a(p, "bmX.m1(I)I", "bmX");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());

  const auto records = analyze_dataflow({&p.methods[0]}, p.pool);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].back_jumps, 1);
  EXPECT_EQ(records[0].forward_jumps, 1);  // the goto
  EXPECT_EQ(records[0].back_merges, 0);

  const auto rows = benchmark_dataflow_rows(records);
  ASSERT_EQ(rows.size(), 2u);  // bmX + Sum
  EXPECT_EQ(rows[0].benchmark, "bmX");
  EXPECT_EQ(rows[1].benchmark, "Sum");
  EXPECT_EQ(rows[1].total_back_merges, 0);
  EXPECT_EQ(rows[1].total_insts,
            static_cast<std::int64_t>(p.methods[0].code.size()));

  const auto summaries = summarize_dataflow(records);
  EXPECT_EQ(summaries.back_merges_total, 0);
  EXPECT_EQ(summaries.static_insts.n, 1u);
}

TEST(FigureOfMerit, SweepNormalizesToBaseline) {
  Program p;
  Assembler a(p, "bm.w(IA)I", "bm");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());

  SweepOptions options;
  const Sweep sweep =
      run_sweep({&p.methods[0]}, p.pool, {"bm.w(IA)I"}, options);
  // 6 configs x 2 scenarios.
  EXPECT_EQ(sweep.samples.size(), 12u);

  const auto fom = fom_rows(sweep, Filter::All);
  ASSERT_EQ(fom.size(), 6u);
  EXPECT_NEAR(fom[0].fm_mean, 1.0, 1e-9);  // Baseline == 1 by definition
  for (std::size_t k = 1; k < fom.size(); ++k) {
    EXPECT_LT(fom[k].fm_mean, 1.0) << fom[k].config;
    EXPECT_GT(fom[k].fm_mean, 0.0) << fom[k].config;
  }
  // Monotone down the Table 15 list for this loop+storage method.
  EXPECT_GE(fom[1].fm_mean, fom[3].fm_mean);
  EXPECT_GE(fom[3].fm_mean, fom[5].fm_mean);

  const auto ratios = node_ratio_rows(sweep, Filter::All);
  EXPECT_DOUBLE_EQ(ratios[0].ratio.mean, 1.0);  // Baseline is dense
  EXPECT_NEAR(ratios[4].ratio.mean, 2.0, 0.2);  // Sparse2

  const auto par = parallelism_rows(sweep);
  ASSERT_EQ(par.size(), 6u);
  for (const auto& row : par) {
    EXPECT_GE(row.mean_fraction_2plus, 0.0);
    EXPECT_LE(row.mean_fraction_2plus, 1.0);
  }

  const auto cov = coverage_rows(sweep);
  ASSERT_EQ(cov.size(), 2u);
  EXPECT_GT(cov[0].mean_coverage, 0.5);

  const auto per_method = per_method_fom(sweep, {"bm.w(IA)I"});
  ASSERT_EQ(per_method.size(), 1u);
  EXPECT_NEAR(per_method[0].fm[0], 1.0, 1e-9);
  EXPECT_GT(per_method[0].hetero_nodes,
            per_method[0].total_insts);  // hetero spreads the method

  const auto corr = hetero_fom_correlations(sweep);
  EXPECT_EQ(corr.size(), 4u);  // Table 23's four factors
}

TEST(Report, RendersAlignedTable) {
  Table t("Demo");
  t.columns({"Case", "IPC"});
  t.row({"Baseline", Table::num(0.61, 2)});
  t.row({"Hetero2", Table::num(0.23, 2)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Baseline"), std::string::npos);
  EXPECT_NE(out.find("0.61"), std::string::npos);
}

TEST(Report, CsvExportQuotesSpecials) {
  Table t("csv");
  t.columns({"Name", "Value"});
  t.row({"plain", "1"});
  t.row({"with,comma", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "Name,Value\n"
            "plain,1\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(Report, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.47), "47%");
  EXPECT_EQ(Table::pct(0.405, 1), "40.5%");
  EXPECT_EQ(Table::big(1234567), "1,234,567");
  EXPECT_EQ(Table::big(12), "12");
}

}  // namespace
}  // namespace javaflow::analysis
