// Tests for the public JavaFlowMachine façade.
#include <gtest/gtest.h>

#include "core/javaflow.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

bytecode::Method sample(Program& p) {
  Assembler a(p, "demo.sum(I)I", "demo");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(0).istore(1);
  a.goto_(test);
  a.bind(body);
  a.iload(1).iload(0).op(Op::iadd).istore(1);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(1).op(Op::ireturn);
  return a.build();
}

TEST(JavaFlowMachine, DeployThenExecute) {
  Program p;
  const auto m = sample(p);
  JavaFlowMachine machine(sim::config_by_name("Hetero2"));
  const DeployedMethod d = machine.deploy(m, p.pool);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.placement.fits);
  EXPECT_GT(d.resolution.total_dflows, 0);
  EXPECT_EQ(d.resolution.back_merges, 0);

  const sim::RunMetrics r =
      machine.execute(d, sim::BranchPredictor::Scenario::BP1);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.ipc(), 0.0);
}

TEST(JavaFlowMachine, SameMethodAcrossConfigs) {
  Program p;
  const auto m = sample(p);
  double baseline_ipc = 0.0;
  for (const auto& cfg : sim::table15_configs()) {
    JavaFlowMachine machine(cfg);
    const DeployedMethod d = machine.deploy(m, p.pool);
    ASSERT_TRUE(d.ok()) << cfg.name;
    const auto r = machine.execute(d, sim::BranchPredictor::Scenario::BP2);
    ASSERT_TRUE(r.completed) << cfg.name;
    if (cfg.name == "Baseline") {
      baseline_ipc = r.ipc();
    } else {
      EXPECT_LE(r.ipc(), baseline_ipc) << cfg.name;
    }
  }
}

TEST(JavaFlowMachine, ExecuteWithoutDeployThrows) {
  JavaFlowMachine machine(sim::config_by_name("Baseline"));
  DeployedMethod empty;
  EXPECT_THROW(machine.execute(empty, sim::BranchPredictor::Scenario::BP1),
               std::runtime_error);
}

TEST(JavaFlowMachine, CapacityMissSurfacesInDeploy) {
  Program p;
  Assembler a(p, "demo.big()I", "demo");
  a.returns(ValueType::Int);
  for (int k = 0; k < 2000; ++k) a.iinc(0, 1);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  sim::MachineConfig cfg = sim::config_by_name("Hetero2");
  cfg.capacity = 64;
  JavaFlowMachine machine(cfg);
  const DeployedMethod d = machine.deploy(m, p.pool);
  EXPECT_FALSE(d.ok());
}

TEST(JavaFlowMachine, ExternalPredictorIsHonored) {
  Program p;
  const auto m = sample(p);
  JavaFlowMachine machine(sim::config_by_name("Compact2"));
  const DeployedMethod d = machine.deploy(m, p.pool);
  ASSERT_TRUE(d.ok());
  sim::BranchPredictor trace(sim::BranchPredictor::Scenario::Trace);
  // No fed outcomes: the latch falls through immediately — the loop body
  // never fires.
  const auto r = machine.execute(d, trace);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.coverage(), 1.0);
}

}  // namespace
}  // namespace javaflow
