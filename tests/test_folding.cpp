// Tests for the §6.4 folding enhancement: pure stack-move elimination
// with producer->consumer rewiring.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "core/javaflow.hpp"
#include "fabric/folding.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::fabric {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

TEST(Folding, DupIsElidedAndProducerFansOut) {
  Program p;
  Assembler a(p, "t.dup()I", "test");
  a.returns(ValueType::Int);
  a.iconst(3);        // 0
  a.op(Op::dup);      // 1 (mover)
  a.op(Op::imul);     // 2
  a.op(Op::ireturn);  // 3
  const auto m = a.build();
  const FoldedMethod f = fold_moves(m, p.pool);
  ASSERT_TRUE(f.ok);
  EXPECT_EQ(f.elided, 1);
  ASSERT_EQ(f.method.code.size(), 3u);
  EXPECT_EQ(f.method.code[0].op, Op::iconst_3);
  EXPECT_EQ(f.method.code[1].op, Op::imul);
  // iconst now feeds BOTH imul sides directly — fan-out 2 after folding.
  EXPECT_EQ(f.graph.fan_out(0), 2u);
}

TEST(Folding, SwapRoutesSidesDirectly) {
  Program p;
  Assembler a(p, "t.swap()I", "test");
  a.returns(ValueType::Int);
  a.iconst(7);        // 0
  a.iconst(3);        // 1
  a.op(Op::swap);     // 2 (mover)
  a.op(Op::isub);     // 3: computes 3 - 7
  a.op(Op::ireturn);  // 4
  const auto m = a.build();
  const FoldedMethod f = fold_moves(m, p.pool);
  ASSERT_TRUE(f.ok);
  EXPECT_EQ(f.elided, 1);
  // After folding, isub (new index 2) side 1 (top) is the value swap
  // moved to the top: iconst_7 (new index 0).
  const auto s1 = f.graph.producers_of(2, 1);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].producer, 0);
  const auto s2 = f.graph.producers_of(2, 2);
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0].producer, 1);
}

TEST(Folding, PopDropsTheEdgeEntirely) {
  Program p;
  Assembler a(p, "t.pop()I", "test");
  a.returns(ValueType::Int);
  a.iconst(1);        // 0: value discarded by pop
  a.iconst(2);        // 1
  a.op(Op::swap);     // 2
  a.op(Op::pop);      // 3: discards the 1
  a.op(Op::ireturn);  // 4: returns 2
  const auto m = a.build();
  const FoldedMethod f = fold_moves(m, p.pool);
  ASSERT_TRUE(f.ok);
  EXPECT_EQ(f.elided, 2);  // swap + pop
  ASSERT_EQ(f.method.code.size(), 3u);
  // iconst_1's value goes nowhere after folding.
  EXPECT_EQ(f.graph.fan_out(0), 0u);
  // ireturn consumes iconst_2.
  EXPECT_EQ(f.graph.producers_of(2, 1)[0].producer, 1);
}

TEST(Folding, BranchTargetMoversAreKept) {
  Program p;
  Assembler a(p, "t.target(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto join = a.new_label();
  a.iconst(5).iconst(6);
  a.iload(0).ifle(join);
  a.iinc(0, 1);
  a.bind(join);
  a.op(Op::swap);  // branch target: must stay resident
  a.op(Op::isub).op(Op::ireturn);
  const auto m = a.build();
  const FoldedMethod f = fold_moves(m, p.pool);
  ASSERT_TRUE(f.ok);
  EXPECT_EQ(f.elided, 0);
  EXPECT_EQ(f.method.code.size(), m.code.size());
}

TEST(Folding, BranchTargetsRemapAcrossElisions) {
  Program p;
  Assembler a(p, "t.remap(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto skip = a.new_label();
  a.iconst(1).op(Op::dup).op(Op::iadd).istore(0);  // dup elided
  a.iload(0).ifle(skip);
  a.iinc(0, 1);
  a.bind(skip);
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const FoldedMethod f = fold_moves(m, p.pool);
  ASSERT_TRUE(f.ok);
  EXPECT_EQ(f.elided, 1);
  // The branch still lands on the first instruction after the arm.
  for (const auto& inst : f.method.code) {
    if (inst.is_branch()) {
      EXPECT_EQ(f.method.code[static_cast<std::size_t>(inst.target)].op,
                Op::iload_0);
    }
  }
}

TEST(Folding, FoldedImageExecutesOnTheMachine) {
  Program p;
  Assembler a(p, "t.run()I", "test");
  a.returns(ValueType::Int);
  a.iconst(3).op(Op::dup).op(Op::imul);   // 9
  a.iconst(2).op(Op::swap).op(Op::isub);  // 9 - 2... (stack order play)
  a.op(Op::ireturn);
  const auto m = a.build();
  const FoldedMethod f = fold_moves(m, p.pool);
  ASSERT_TRUE(f.ok);
  ASSERT_GT(f.elided, 0);

  sim::Engine engine(sim::config_by_name("Compact2"));
  sim::BranchPredictor bp(sim::BranchPredictor::Scenario::BP1);
  const auto folded = engine.run(f.method, f.graph, bp);
  ASSERT_TRUE(folded.completed);
  const auto unfolded_graph = build_dataflow_graph(m, p.pool);
  sim::BranchPredictor bp2(sim::BranchPredictor::Scenario::BP1);
  const auto unfolded = engine.run(m, unfolded_graph, bp2);
  ASSERT_TRUE(unfolded.completed);
  // Folding reduces both resident nodes and elapsed cycles.
  EXPECT_LT(folded.static_size, unfolded.static_size);
  EXPECT_LE(folded.mesh_cycles, unfolded.mesh_cycles);
}

TEST(Folding, FoldableCountOverKernels) {
  workloads::CorpusOptions opt;
  opt.total_methods = 0;
  const workloads::Corpus c = workloads::make_corpus(opt);
  std::int32_t total = 0, foldable = 0;
  for (const auto& m : c.program.methods) {
    total += static_cast<std::int32_t>(m.code.size());
    foldable += foldable_count(m);
    const FoldedMethod f = fold_moves(m, c.program.pool);
    ASSERT_TRUE(f.ok) << m.name;
    EXPECT_EQ(f.elided, foldable_count(m)) << m.name;
    EXPECT_EQ(f.method.code.size(), m.code.size() -
                                        static_cast<std::size_t>(f.elided))
        << m.name;
  }
  // Kernels use dup/swap sparingly (JAVAC style); folding exists but is
  // a small win here — the big §6.4 target (locals folding) is future
  // work in the paper too.
  EXPECT_GE(foldable, 0);
  EXPECT_LT(foldable, total / 4);
}

TEST(Folding, FoldedCorpusMethodsStillComplete) {
  const workloads::Corpus c = workloads::make_corpus({});
  sim::Engine engine(sim::config_by_name("Hetero2"));
  int executed = 0;
  for (std::size_t i = 0; i < c.program.methods.size(); i += 97) {
    const auto& m = c.program.methods[i];
    const FoldedMethod f = fold_moves(m, c.program.pool);
    ASSERT_TRUE(f.ok) << m.name;
    sim::BranchPredictor bp(sim::BranchPredictor::Scenario::BP1);
    const auto r = engine.run(f.method, f.graph, bp);
    if (!r.fits) continue;
    ASSERT_TRUE(r.completed) << m.name;
    ++executed;
  }
  EXPECT_GT(executed, 10);
}

}  // namespace
}  // namespace javaflow::fabric
