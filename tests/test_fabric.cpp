// Tests for fabric layouts and the greedy method loader (Figure 20,
// Table 19 ratios).
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"

namespace javaflow::fabric {
namespace {

using bytecode::Assembler;
using bytecode::NodeType;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

Fabric make(LayoutKind layout, std::int32_t capacity = 10000) {
  FabricOptions opt;
  opt.layout = layout;
  opt.capacity = capacity;
  return Fabric(opt);
}

// Mixed-group method: locals, arithmetic, float, storage, control.
bytecode::Method mixed_method(Program& p, int repeats) {
  Assembler a(p, "t.mixed(IA)I", "test");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  for (int k = 0; k < repeats; ++k) {
    a.iload(0).iconst(1).op(Op::iadd).istore(0);        // arithmetic
    a.aload(1).iload(0).op(Op::iaload).istore(0);       // storage
    a.iload(0).op(Op::i2d).dconst(0.5).op(Op::dmul);    // float
    a.op(Op::d2i).istore(0);
    auto skip = a.new_label();
    a.iload(0).ifle(skip);                              // control
    a.iinc(0, 1);
    a.bind(skip);
  }
  a.iload(0).op(Op::ireturn);
  return a.build();
}

TEST(FabricLayout, CompactAcceptsEverything) {
  const Fabric f = make(LayoutKind::Compact);
  for (int slot = 0; slot < 100; ++slot) {
    for (NodeType t : {NodeType::Arithmetic, NodeType::FloatingPoint,
                       NodeType::Storage, NodeType::Control}) {
      EXPECT_TRUE(f.slot_accepts(slot, t));
    }
  }
}

TEST(FabricLayout, SparseAlternatesBlanks) {
  const Fabric f = make(LayoutKind::Sparse);
  EXPECT_TRUE(f.slot_accepts(0, NodeType::Arithmetic));
  EXPECT_FALSE(f.slot_accepts(1, NodeType::Arithmetic));
  EXPECT_TRUE(f.slot_accepts(2, NodeType::Storage));
  EXPECT_EQ(f.slot_type(3), NodeType::Blank);
}

TEST(FabricLayout, HeterogeneousPatternMatchesFigure26Mix) {
  const Fabric f = make(LayoutKind::Heterogeneous);
  int counts[4] = {0, 0, 0, 0};
  for (int slot = 0; slot < 10; ++slot) {
    switch (f.slot_type(slot)) {
      case NodeType::Arithmetic: ++counts[0]; break;
      case NodeType::FloatingPoint: ++counts[1]; break;
      case NodeType::Storage: ++counts[2]; break;
      case NodeType::Control: ++counts[3]; break;
      default: FAIL() << "unexpected node type";
    }
  }
  EXPECT_EQ(counts[0], 6);  // 6 arithmetic
  EXPECT_EQ(counts[1], 1);  // 1 floating point
  EXPECT_EQ(counts[2], 2);  // 2 storage
  EXPECT_EQ(counts[3], 1);  // 1 control
}

TEST(FabricLayout, HeterogeneousOnlyAcceptsMatchingType) {
  const Fabric f = make(LayoutKind::Heterogeneous);
  for (int slot = 0; slot < 40; ++slot) {
    const NodeType t = f.slot_type(slot);
    for (NodeType want : {NodeType::Arithmetic, NodeType::FloatingPoint,
                          NodeType::Storage, NodeType::Control}) {
      EXPECT_EQ(f.slot_accepts(slot, want), t == want);
    }
  }
}

TEST(Loader, CompactPlacementIsDense) {
  Program p;
  const auto m = mixed_method(p, 4);
  const Fabric f = make(LayoutKind::Compact);
  const Placement pl = load_method(f, m);
  ASSERT_TRUE(pl.fits);
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    EXPECT_EQ(pl.slot_of[i], static_cast<std::int32_t>(i));
  }
  EXPECT_DOUBLE_EQ(pl.nodes_per_instruction(m.code.size()), 1.0);
}

TEST(Loader, SparsePlacementUsesEveryOtherSlot) {
  Program p;
  const auto m = mixed_method(p, 4);
  const Fabric f = make(LayoutKind::Sparse);
  const Placement pl = load_method(f, m);
  ASSERT_TRUE(pl.fits);
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    EXPECT_EQ(pl.slot_of[i], static_cast<std::int32_t>(2 * i));
  }
  // Table 19: Sparse2 ratio is 2.0 (one blank per instruction).
  EXPECT_NEAR(pl.nodes_per_instruction(m.code.size()), 2.0, 0.05);
}

TEST(Loader, HeterogeneousPlacementMatchesTypes) {
  Program p;
  const auto m = mixed_method(p, 6);
  const Fabric f = make(LayoutKind::Heterogeneous);
  const Placement pl = load_method(f, m);
  ASSERT_TRUE(pl.fits);
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const NodeType want = bytecode::node_type_for(m.code[i].group());
    EXPECT_EQ(f.slot_type(pl.slot_of[i]), want) << "instruction " << i;
  }
  // Placement is strictly increasing (the greedy stream never backtracks).
  for (std::size_t i = 1; i < m.code.size(); ++i) {
    EXPECT_GT(pl.slot_of[i], pl.slot_of[i - 1]);
  }
  // The mixed method spans clearly more nodes than instructions (Table 19).
  EXPECT_GT(pl.nodes_per_instruction(m.code.size()), 1.5);
}

TEST(Loader, CapacityMissIsReported) {
  Program p;
  const auto m = mixed_method(p, 8);
  const Fabric f = make(LayoutKind::Heterogeneous, /*capacity=*/16);
  const Placement pl = load_method(f, m);
  EXPECT_FALSE(pl.fits);
}

TEST(Loader, LoadCyclesArePipelined) {
  Program p;
  const auto m = mixed_method(p, 4);
  const Fabric f = make(LayoutKind::Compact);
  const Placement pl = load_method(f, m);
  // n instructions injected 1/cycle, the last rides to max_slot.
  EXPECT_EQ(pl.load_cycles,
            static_cast<std::int64_t>(m.code.size()) + pl.max_slot + 1);
}

TEST(Fabric, SerialTicksRespectCollapsedMode) {
  const Fabric normal = make(LayoutKind::Compact);
  const Fabric collapsed = make(LayoutKind::Collapsed);
  EXPECT_EQ(normal.serial_ticks(0, 12), 12);
  EXPECT_EQ(collapsed.serial_ticks(0, 12), 0);
  EXPECT_EQ(collapsed.mesh_cycles(0, 95), 1);
  EXPECT_GT(normal.mesh_cycles(0, 95), 1);
}

TEST(Fabric, LayoutNames) {
  EXPECT_EQ(layout_name(LayoutKind::Collapsed), "Collapsed");
  EXPECT_EQ(layout_name(LayoutKind::Compact), "Compact");
  EXPECT_EQ(layout_name(LayoutKind::Sparse), "Sparse");
  EXPECT_EQ(layout_name(LayoutKind::Heterogeneous), "Heterogeneous");
}

}  // namespace
}  // namespace javaflow::fabric
