// Unit tests for the managed heap (objects, arrays, statics, strings)
// and its exception conditions.
#include <gtest/gtest.h>

#include "jvm/heap.hpp"

namespace javaflow::jvm {
namespace {

using bytecode::ClassDef;

ClassDef point_class() {
  return ClassDef{"Point",
                  {{"x", ValueType::Double}, {"y", ValueType::Double}},
                  {{"count", ValueType::Int}}};
}

TEST(Heap, ObjectFieldsDefaultInitialized) {
  Heap h;
  const ClassDef cls = point_class();
  const Ref obj = h.new_object(cls);
  EXPECT_NE(obj, kNull);
  EXPECT_EQ(h.get_field(obj, 0).type, ValueType::Double);
  EXPECT_DOUBLE_EQ(h.get_field(obj, 0).as_fp(), 0.0);
  EXPECT_EQ(h.class_of(obj), "Point");
  EXPECT_TRUE(h.is_object(obj));
  EXPECT_FALSE(h.is_array(obj));
}

TEST(Heap, FieldRoundTrip) {
  Heap h;
  const ClassDef cls = point_class();
  const Ref obj = h.new_object(cls);
  h.put_field(obj, 1, Value::make_double(2.5));
  EXPECT_DOUBLE_EQ(h.get_field(obj, 1).as_fp(), 2.5);
}

TEST(Heap, NullDereferenceThrows) {
  Heap h;
  EXPECT_THROW(h.get_field(kNull, 0), JvmException);
  EXPECT_THROW(h.array_get(kNull, 0), JvmException);
  EXPECT_THROW(h.array_length(kNull), JvmException);
}

TEST(Heap, FieldSlotOutOfRangeThrows) {
  Heap h;
  const ClassDef cls = point_class();
  const Ref obj = h.new_object(cls);
  EXPECT_THROW(h.get_field(obj, 7), JvmException);
  EXPECT_THROW(h.put_field(obj, -1, Value::make_int(0)), JvmException);
}

TEST(Heap, ArrayBasics) {
  Heap h;
  const Ref arr = h.new_array(ValueType::Int, 8);
  EXPECT_EQ(h.array_length(arr), 8);
  EXPECT_TRUE(h.is_array(arr));
  EXPECT_EQ(h.array_element_type(arr), ValueType::Int);
  h.array_set(arr, 3, Value::make_int(42));
  EXPECT_EQ(h.array_get(arr, 3).as_int(), 42);
}

TEST(Heap, ArrayBoundsThrow) {
  Heap h;
  const Ref arr = h.new_array(ValueType::Int, 4);
  EXPECT_THROW(h.array_get(arr, 4), JvmException);
  EXPECT_THROW(h.array_get(arr, -1), JvmException);
  EXPECT_THROW(h.array_set(arr, 100, Value::make_int(0)), JvmException);
}

TEST(Heap, NegativeArraySizeThrows) {
  Heap h;
  EXPECT_THROW(h.new_array(ValueType::Int, -5), JvmException);
}

TEST(Heap, ArrayOpsOnObjectThrow) {
  Heap h;
  const Ref obj = h.new_object(point_class());
  EXPECT_THROW(h.array_length(obj), JvmException);
  EXPECT_THROW(h.array_get(obj, 0), JvmException);
}

TEST(Heap, MultiDimensionalArraysAreRectangular) {
  Heap h;
  const Ref mat = h.new_multi_array(ValueType::Double, {3, 4});
  EXPECT_EQ(h.array_length(mat), 3);
  for (int r = 0; r < 3; ++r) {
    const Ref row = h.array_get(mat, r).as_ref();
    EXPECT_EQ(h.array_length(row), 4);
    EXPECT_EQ(h.array_element_type(row), ValueType::Double);
  }
  // Rows are distinct objects.
  EXPECT_NE(h.array_get(mat, 0).as_ref(), h.array_get(mat, 1).as_ref());
}

TEST(Heap, ThreeDimensionalArray) {
  Heap h;
  const Ref cube = h.new_multi_array(ValueType::Int, {2, 3, 4});
  const Ref plane = h.array_get(cube, 1).as_ref();
  const Ref row = h.array_get(plane, 2).as_ref();
  EXPECT_EQ(h.array_length(row), 4);
}

TEST(Heap, StringsRoundTrip) {
  Heap h;
  const Ref s = h.new_string("hello, fabric");
  EXPECT_EQ(h.read_string(s), "hello, fabric");
  EXPECT_EQ(h.array_length(s), 13);
  EXPECT_EQ(h.array_get(s, 0).as_int(), 'h');
}

TEST(Heap, StaticsLazilyInitializedPerClass) {
  Heap h;
  const ClassDef cls = point_class();
  EXPECT_EQ(h.get_static(cls, 0).as_int(), 0);
  h.put_static(cls, 0, Value::make_int(7));
  EXPECT_EQ(h.get_static(cls, 0).as_int(), 7);
  EXPECT_THROW(h.get_static(cls, 5), JvmException);
}

TEST(Heap, HandlesAreStable) {
  Heap h;
  const Ref a = h.new_array(ValueType::Int, 1);
  const Ref b = h.new_array(ValueType::Int, 1);
  h.array_set(a, 0, Value::make_int(1));
  h.array_set(b, 0, Value::make_int(2));
  EXPECT_EQ(h.array_get(a, 0).as_int(), 1);
  EXPECT_EQ(h.array_get(b, 0).as_int(), 2);
  EXPECT_EQ(h.object_count(), 2u);
}

}  // namespace
}  // namespace javaflow::jvm
