// Failure injection: the §6.3 exception path — a node halts, the
// EXCEPTION_TOKEN reaches the GPP, and the method terminates.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "sim/engine.hpp"

namespace javaflow::sim {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

bytecode::Method divider(Program& p) {
  Assembler a(p, "t.div(II)I", "test");
  a.args({ValueType::Int, ValueType::Int}).returns(ValueType::Int);
  a.iload(0).iload(1).op(Op::idiv);  // 0,1,2 — the faulting node
  a.iconst(1).op(Op::iadd);          // 3,4
  a.op(Op::ireturn);                 // 5
  return a.build();
}

TEST(Exceptions, InjectedFaultTerminatesTheMethod) {
  Program p;
  const auto m = divider(p);
  const auto graph = fabric::build_dataflow_graph(m, p.pool);
  EngineOptions opt;
  opt.inject_exception_at = 2;  // the idiv raises ArithmeticException
  Engine engine(config_by_name("Compact2"), opt);
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  const RunMetrics r = engine.run(m, graph, bp);
  EXPECT_TRUE(r.completed);   // terminated, via the GPP
  EXPECT_TRUE(r.exception);
  // Downstream instructions never fire.
  EXPECT_LT(r.distinct_fired, r.static_size);
}

TEST(Exceptions, ExceptionPaysTheGppServiceTrip) {
  Program p;
  const auto m = divider(p);
  const auto graph = fabric::build_dataflow_graph(m, p.pool);
  const MachineConfig cfg = config_by_name("Compact2");
  EngineOptions opt;
  opt.inject_exception_at = 2;
  Engine engine(cfg, opt);
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  const RunMetrics r = engine.run(m, graph, bp);
  ASSERT_TRUE(r.exception);
  EXPECT_GE(r.mesh_cycles, cfg.ring.gpp_service);
}

TEST(Exceptions, LaterFiringFaultsAfterLoopIterations) {
  Program p;
  Assembler a(p, "t.loopdiv(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);      // 0
  a.bind(body);
  a.iload(0).iconst(2).op(Op::idiv).istore(0);  // 1,2,3,4
  a.bind(test);
  a.iload(0).ifgt(body);  // 5,6
  a.iload(0).op(Op::ireturn);
  const auto m = a.build();
  const auto graph = fabric::build_dataflow_graph(m, p.pool);
  EngineOptions opt;
  opt.inject_exception_at = 3;   // the idiv inside the loop
  opt.inject_exception_fire = 4; // faults on the 4th iteration
  Engine engine(config_by_name("Compact2"), opt);
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  const RunMetrics r = engine.run(m, graph, bp);
  EXPECT_TRUE(r.exception);
  // Three clean firings happened before the fault.
  EXPECT_GE(r.instructions_fired, 3 * 4);
}

TEST(Exceptions, NoInjectionNoException) {
  Program p;
  const auto m = divider(p);
  const auto graph = fabric::build_dataflow_graph(m, p.pool);
  Engine engine(config_by_name("Compact2"));
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  const RunMetrics r = engine.run(m, graph, bp);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.exception);
  EXPECT_EQ(r.distinct_fired, r.static_size);
}

TEST(Exceptions, AthrowCompletesAsExceptionalReturn) {
  // athrow is a Return-group instruction: it ends the method and hands
  // control to the GPP (§6.3).
  Program p;
  p.classes["E"] = bytecode::ClassDef{"E", {}, {}};
  Assembler a(p, "t.boom()V", "test");
  a.returns(ValueType::Void);
  a.new_object("E");
  a.op(Op::athrow);
  const auto m = a.build();
  const auto graph = fabric::build_dataflow_graph(m, p.pool);
  Engine engine(config_by_name("Compact2"));
  BranchPredictor bp(BranchPredictor::Scenario::BP1);
  const RunMetrics r = engine.run(m, graph, bp);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace javaflow::sim
