// Unit + property tests for the Appendix A opcode table.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bytecode/opcode.hpp"

namespace javaflow::bytecode {
namespace {

std::vector<Op> all_ops() {
  std::vector<Op> ops;
  for (int b = 0; b < 256; ++b) {
    if (is_valid_opcode(static_cast<std::uint8_t>(b))) {
      ops.push_back(static_cast<Op>(b));
    }
  }
  return ops;
}

TEST(OpcodeTable, HasFullArchitectedSet) {
  // 198 architected opcodes (0x00..0xc9 minus the gaps at 0xba and 0xc4)
  // plus the 7 interpreter-internal quick forms: 200 + 7.
  EXPECT_EQ(all_ops().size(), 207u);
}

TEST(OpcodeTable, KnownEncodings) {
  EXPECT_EQ(static_cast<int>(Op::nop), 0x00);
  EXPECT_EQ(static_cast<int>(Op::iadd), 0x60);
  EXPECT_EQ(static_cast<int>(Op::goto_), 0xa7);
  EXPECT_EQ(static_cast<int>(Op::invokevirtual), 0xb6);
  EXPECT_EQ(static_cast<int>(Op::getfield), 0xb4);
  EXPECT_EQ(static_cast<int>(Op::multianewarray), 0xc5);
}

TEST(OpcodeTable, GapsAreInvalid) {
  EXPECT_FALSE(is_valid_opcode(0xba));  // invokedynamic — not in the paper
  EXPECT_FALSE(is_valid_opcode(0xc4));  // wide — linear form needs no wide
  EXPECT_FALSE(is_valid_opcode(0xff));
}

class AllOpcodes : public ::testing::TestWithParam<Op> {};

INSTANTIATE_TEST_SUITE_P(Table, AllOpcodes, ::testing::ValuesIn(all_ops()),
                         [](const ::testing::TestParamInfo<Op>& info) {
                           std::string n{op_name(info.param)};
                           for (char& c : n) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return n;
                         });

// Property: the verifier signature agrees with the pop/push counts for
// every opcode with fixed counts.
TEST_P(AllOpcodes, SignatureMatchesPopPush) {
  const OpInfo& info = op_info(GetParam());
  if (info.pop == kVarCount || info.push == kVarCount) {
    EXPECT_NE(info.sig.find('?'), std::string_view::npos);
    return;
  }
  const auto sep = info.sig.find('>');
  ASSERT_NE(sep, std::string_view::npos) << info.name;
  if (info.sig.find('?') != std::string_view::npos) return;  // pool-typed
  EXPECT_EQ(info.sig.substr(0, sep).size(), info.pop) << info.name;
  EXPECT_EQ(info.sig.substr(sep + 1).size(), info.push) << info.name;
}

// Property: every group maps to exactly one fabric node class and a
// positive Table 17 execution cost.
TEST_P(AllOpcodes, GroupMappingsAreTotal) {
  const Group g = op_info(GetParam()).group;
  const NodeType nt = node_type_for(g);
  EXPECT_TRUE(nt == NodeType::Arithmetic || nt == NodeType::FloatingPoint ||
              nt == NodeType::Storage || nt == NodeType::Control);
  EXPECT_GE(execution_mesh_cycles(g), 1);
  EXPECT_LE(execution_mesh_cycles(g), 10);
}

TEST_P(AllOpcodes, QuickFormsRoundTrip) {
  const Op op = GetParam();
  if (has_quick_form(op)) {
    const Op q = quick_form(op);
    EXPECT_NE(q, op);
    EXPECT_TRUE(is_quick(q));
    // Quick form keeps the pop/push behaviour of the base form.
    EXPECT_EQ(op_info(q).pop, op_info(op).pop);
    EXPECT_EQ(op_info(q).push, op_info(op).push);
    EXPECT_EQ(op_info(q).group, op_info(op).group);
  } else {
    EXPECT_EQ(quick_form(op), op);
  }
}

TEST(OpcodeTable, ExecutionCostsMatchTable17) {
  EXPECT_EQ(execution_mesh_cycles(Group::ArithMove), 1);
  EXPECT_EQ(execution_mesh_cycles(Group::FpArith), 10);
  EXPECT_EQ(execution_mesh_cycles(Group::FpConversion), 5);
  EXPECT_EQ(execution_mesh_cycles(Group::ArithInteger), 2);
  EXPECT_EQ(execution_mesh_cycles(Group::MemRead), 2);
  EXPECT_EQ(execution_mesh_cycles(Group::LocalRead), 2);
  EXPECT_EQ(execution_mesh_cycles(Group::ControlFlow), 2);
}

TEST(OpcodeTable, HeterogeneousNodeTypes) {
  EXPECT_EQ(node_type_for(Group::FpArith), NodeType::FloatingPoint);
  EXPECT_EQ(node_type_for(Group::FpConversion), NodeType::FloatingPoint);
  EXPECT_EQ(node_type_for(Group::MemRead), NodeType::Storage);
  EXPECT_EQ(node_type_for(Group::MemWrite), NodeType::Storage);
  EXPECT_EQ(node_type_for(Group::MemConstant), NodeType::Storage);
  EXPECT_EQ(node_type_for(Group::Special), NodeType::Storage);
  EXPECT_EQ(node_type_for(Group::ControlFlow), NodeType::Control);
  EXPECT_EQ(node_type_for(Group::Call), NodeType::Control);
  EXPECT_EQ(node_type_for(Group::Return), NodeType::Control);
  EXPECT_EQ(node_type_for(Group::ArithInteger), NodeType::Arithmetic);
  EXPECT_EQ(node_type_for(Group::LocalRead), NodeType::Arithmetic);
}

TEST(OpcodeTable, StaticMixCategories) {
  EXPECT_EQ(static_mix_category(Group::ArithInteger), StaticMixCategory::Arith);
  EXPECT_EQ(static_mix_category(Group::LocalWrite), StaticMixCategory::Arith);
  EXPECT_EQ(static_mix_category(Group::FpArith), StaticMixCategory::Float);
  EXPECT_EQ(static_mix_category(Group::Call), StaticMixCategory::Control);
  EXPECT_EQ(static_mix_category(Group::MemWrite), StaticMixCategory::Storage);
}

TEST(OpcodeTable, ControlTransferGroups) {
  EXPECT_TRUE(is_control_transfer(Group::ControlFlow));
  EXPECT_TRUE(is_control_transfer(Group::Call));
  EXPECT_TRUE(is_control_transfer(Group::Return));
  EXPECT_FALSE(is_control_transfer(Group::ArithInteger));
  EXPECT_FALSE(is_control_transfer(Group::MemRead));
}

TEST(OpcodeTable, PaperAppendixSpotChecks) {
  // Table 30: iadd pop 2 push 1.
  EXPECT_EQ(op_info(Op::iadd).pop, 2);
  EXPECT_EQ(op_info(Op::iadd).push, 1);
  // Table 32: lcmp grouped with FP arithmetic, pop 2 push 1.
  EXPECT_EQ(op_info(Op::lcmp).group, Group::FpArith);
  // Table 33: if_icmplt pop 2 push 0.
  EXPECT_EQ(op_info(Op::if_icmplt).pop, 2);
  EXPECT_EQ(op_info(Op::if_icmplt).push, 0);
  // Table 38: iastore pop 3 push 0.
  EXPECT_EQ(op_info(Op::iastore).pop, 3);
  EXPECT_EQ(op_info(Op::iastore).push, 0);
  // Table 39: iload_0 pop 0 push 1.
  EXPECT_EQ(op_info(Op::iload_0).pop, 0);
  EXPECT_EQ(op_info(Op::iload_0).push, 1);
  // Calls are signature-dependent.
  EXPECT_EQ(op_info(Op::invokestatic).pop, kVarCount);
}

}  // namespace
}  // namespace javaflow::bytecode
