// Tests for the persistent sweep result cache (src/cache/): key
// derivation stability, record-format robustness (truncation, bit rot,
// stale fingerprints all degrade to a miss), store round trips, and the
// run_sweep integration — warm hits, verify mode, corpus dedup, and the
// method filter must all reproduce cold results bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "bytecode/assembler.hpp"
#include "cache/hash.hpp"
#include "cache/key.hpp"
#include "cache/record.hpp"
#include "cache/store.hpp"
#include "sim/config.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// Fresh per-test store directory under gtest's temp root.
std::string temp_store(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "javaflow_cache_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---- hashing ----

TEST(CacheHash, StableAndDiscriminating) {
  const cache::Hash128 a = cache::hash_bytes("abc");
  EXPECT_EQ(a, cache::hash_bytes("abc"));
  EXPECT_NE(a, cache::hash_bytes("abd"));
  EXPECT_NE(a, cache::hash_bytes(""));
  EXPECT_NE(cache::hash_bytes(""), cache::Hash128{});
}

TEST(CacheHash, StringsAreLengthPrefixed) {
  cache::Hasher h1, h2;
  h1.str("ab");
  h1.str("c");
  h2.str("a");
  h2.str("bc");
  EXPECT_NE(h1.digest(), h2.digest());
}

TEST(CacheHash, HexSpellingIs32LowercaseDigits) {
  const std::string hex = cache::to_hex(cache::hash_bytes("abc"));
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_EQ(cache::to_hex(cache::Hash128{}), std::string(32, '0'));
}

// ---- key derivation ----

bytecode::Method tiny_method(Program& p, const std::string& name,
                             const std::string& benchmark,
                             std::int32_t constant) {
  Assembler a(p, name, benchmark);
  a.returns(ValueType::Int);
  a.iconst(constant).op(Op::ireturn);
  return a.build();
}

TEST(CacheKey, BodyHashIgnoresReportingMetadata) {
  Program p;
  const bytecode::Method a = tiny_method(p, "bm.a()I", "bench_a", 7);
  const bytecode::Method b = tiny_method(p, "other.b()I", "bench_b", 7);
  const bytecode::Method c = tiny_method(p, "bm.a()I", "bench_a", 8);
  // Name and benchmark are reporting metadata, not simulation inputs.
  EXPECT_EQ(cache::hash_method_body(a), cache::hash_method_body(b));
  // A one-operand body change must move the digest.
  EXPECT_NE(cache::hash_method_body(a), cache::hash_method_body(c));
}

TEST(CacheKey, ConfigDigestsAreDistinctAcrossTable15) {
  const std::vector<sim::MachineConfig> configs = sim::table15_configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_NE(configs[i].canonical_text().find(configs[i].name),
              std::string::npos);
    for (std::size_t j = i + 1; j < configs.size(); ++j) {
      EXPECT_NE(cache::hash_config(configs[i]), cache::hash_config(configs[j]))
          << configs[i].name << " vs " << configs[j].name;
    }
  }
}

TEST(CacheKey, CellKeyCoversEveryInput) {
  const cache::Hash128 body = cache::hash_bytes("body");
  const cache::Hash128 pool = cache::hash_bytes("pool");
  const cache::Hash128 cfg = cache::hash_bytes("cfg");
  const cache::Hash128 eng = cache::hash_bytes("eng");
  const cache::Hash128 base = cache::cell_key(
      body, pool, cfg, eng, sim::BranchPredictor::Scenario::BP1);
  EXPECT_EQ(base, cache::cell_key(body, pool, cfg, eng,
                                  sim::BranchPredictor::Scenario::BP1));
  EXPECT_NE(base, cache::cell_key(body, pool, cfg, eng,
                                  sim::BranchPredictor::Scenario::BP2));
  EXPECT_NE(base, cache::cell_key(pool, body, cfg, eng,
                                  sim::BranchPredictor::Scenario::BP1));
  EXPECT_NE(base,
            cache::cell_key(body, pool, cfg, eng,
                            sim::BranchPredictor::Scenario::BP1,
                            cache::kEngineFingerprint + 1));
}

// ---- record format ----

cache::MethodRecord sample_record() {
  cache::MethodRecord r;
  r.fingerprint = cache::kEngineFingerprint;
  r.method_name = "bm.sample()I";
  for (int i = 0; i < 3; ++i) {
    cache::CellRecord cell;
    cell.key = cache::hash_bytes("cell" + std::to_string(i));
    cell.static_insts = 10 + i;
    cell.back_jumps = i;
    cell.metrics.fits = true;
    cell.metrics.completed = true;
    cell.metrics.ticks = 1000 + i;
    cell.metrics.mesh_cycles = 250 + i;
    cell.metrics.instructions_fired = 480 + i;
    cell.metrics.distinct_fired = 12;
    cell.metrics.static_size = 14;
    cell.metrics.max_slot = 13;
    cell.metrics.mesh_messages = 77;
    cell.metrics.serial_messages = 5;
    cell.metrics.ticks_exec_1plus = 900;
    cell.metrics.ticks_exec_2plus = 300;
    r.cells.push_back(cell);
  }
  return r;
}

TEST(CacheRecord, RoundTripIsByteStable) {
  const cache::MethodRecord r = sample_record();
  const std::string bytes = cache::serialize_record(r);
  EXPECT_EQ(bytes, cache::serialize_record(r));

  cache::MethodRecord back;
  ASSERT_TRUE(
      cache::deserialize_record(bytes, cache::kEngineFingerprint, back));
  EXPECT_EQ(back, r);
  // Re-serializing the parsed record reproduces the original bytes.
  EXPECT_EQ(cache::serialize_record(back), bytes);
}

TEST(CacheRecord, RejectsEveryTruncation) {
  const std::string bytes = cache::serialize_record(sample_record());
  cache::MethodRecord out;
  EXPECT_FALSE(cache::deserialize_record("", cache::kEngineFingerprint, out));
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(cache::deserialize_record(bytes.substr(0, n),
                                           cache::kEngineFingerprint, out))
        << "prefix of " << n << " bytes parsed";
  }
  // Trailing garbage is an anomaly too.
  EXPECT_FALSE(cache::deserialize_record(bytes + "x",
                                         cache::kEngineFingerprint, out));
}

TEST(CacheRecord, RejectsEverySingleBitOfRot) {
  const std::string bytes = cache::serialize_record(sample_record());
  cache::MethodRecord out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    EXPECT_FALSE(
        cache::deserialize_record(bad, cache::kEngineFingerprint, out))
        << "flip at byte " << i << " parsed";
  }
}

TEST(CacheRecord, StaleFingerprintIsAMissButStillWellFormed) {
  cache::MethodRecord r = sample_record();
  r.fingerprint = cache::kEngineFingerprint + 1;
  const std::string bytes = cache::serialize_record(r);
  cache::MethodRecord out;
  EXPECT_FALSE(
      cache::deserialize_record(bytes, cache::kEngineFingerprint, out));
  // Maintenance walks can still read it to count it as stale.
  ASSERT_TRUE(cache::deserialize_record_any_fingerprint(bytes, out));
  EXPECT_EQ(out, r);
}

// ---- store ----

TEST(CacheStore, SaveLoadRemoveRoundTrip) {
  const cache::CacheStore store(temp_store("roundtrip"));
  const cache::Hash128 key = cache::hash_bytes("key");
  const cache::MethodRecord r = sample_record();

  cache::MethodRecord out;
  EXPECT_FALSE(store.load(key, cache::kEngineFingerprint, out));
  ASSERT_TRUE(store.save(key, r));
  ASSERT_TRUE(store.load(key, cache::kEngineFingerprint, out));
  EXPECT_EQ(out, r);
  // A fingerprint the record was not produced under is a miss.
  EXPECT_FALSE(store.load(key, cache::kEngineFingerprint + 1, out));
  EXPECT_TRUE(store.remove(key));
  EXPECT_FALSE(store.load(key, cache::kEngineFingerprint, out));
}

TEST(CacheStore, CorruptAndStaleFilesAreCountedAndPruned) {
  const cache::CacheStore store(temp_store("prune"));
  ASSERT_TRUE(store.save(cache::hash_bytes("good"), sample_record()));
  cache::MethodRecord stale = sample_record();
  stale.fingerprint = cache::kEngineFingerprint + 1;
  ASSERT_TRUE(store.save(cache::hash_bytes("stale"), stale));
  const cache::Hash128 bad_key = cache::hash_bytes("bad");
  ASSERT_TRUE(store.save(bad_key, sample_record()));
  {
    std::ofstream f(store.path_for(bad_key),
                    std::ios::binary | std::ios::app);
    f << "rot";
  }

  cache::MethodRecord out;
  EXPECT_FALSE(store.load(bad_key, cache::kEngineFingerprint, out));

  const cache::CacheStore::Stats s = store.stats(cache::kEngineFingerprint);
  EXPECT_EQ(s.files, 3u);
  EXPECT_EQ(s.stale_files, 1u);
  EXPECT_EQ(s.corrupt_files, 1u);
  EXPECT_EQ(s.cells, sample_record().cells.size());

  EXPECT_EQ(store.prune(cache::kEngineFingerprint), 2u);
  const cache::CacheStore::Stats after = store.stats(cache::kEngineFingerprint);
  EXPECT_EQ(after.files, 1u);
  EXPECT_EQ(after.stale_files, 0u);
  EXPECT_EQ(after.corrupt_files, 0u);
}

TEST(CacheStore, InvalidateMatchesStoredMethodNames) {
  const cache::CacheStore store(temp_store("invalidate"));
  cache::MethodRecord a = sample_record();
  a.method_name = "scimark.fft.transform()V";
  cache::MethodRecord b = sample_record();
  b.method_name = "crypto.aes.round()V";
  ASSERT_TRUE(store.save(cache::hash_bytes("a"), a));
  ASSERT_TRUE(store.save(cache::hash_bytes("b"), b));

  EXPECT_EQ(store.invalidate("scimark"), 1u);
  cache::MethodRecord out;
  EXPECT_FALSE(store.load(cache::hash_bytes("a"), cache::kEngineFingerprint,
                          out));
  EXPECT_TRUE(store.load(cache::hash_bytes("b"), cache::kEngineFingerprint,
                         out));
  // No substring: wipe everything.
  EXPECT_EQ(store.invalidate(""), 1u);
  EXPECT_EQ(store.stats(cache::kEngineFingerprint).files, 0u);
}

// ---- run_sweep integration ----

analysis::Sweep corpus_sweep(cache::CacheMode mode, const std::string& dir,
                             int threads = 1, int stride = 61,
                             const std::string& filter = "") {
  static const workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }
  analysis::SweepOptions options;
  options.stride = stride;
  options.threads = threads;
  options.allow_oversubscribe = true;  // single-hardware-thread CI hosts
  options.cache = mode;
  options.cache_dir = dir;
  options.method_filter = filter;
  return analysis::run_sweep(methods, corpus.program.pool, hot, options);
}

TEST(CacheSweep, WarmHitsReproduceColdResults) {
  const std::string dir = temp_store("warm");
  const analysis::Sweep cold = corpus_sweep(cache::CacheMode::ReadWrite, dir);
  ASSERT_GT(cold.samples.size(), 100u);
  EXPECT_EQ(cold.cache.hit_cells, 0u);
  EXPECT_EQ(cold.cache.miss_cells + cold.cache.dedup_cells,
            cold.samples.size());
  EXPECT_GT(cold.cache.stored_records, 0u);

  const analysis::Sweep warm = corpus_sweep(cache::CacheMode::Read, dir);
  EXPECT_EQ(warm.samples, cold.samples);
  EXPECT_EQ(warm.cache.miss_cells, 0u);
  EXPECT_EQ(warm.cache.hit_cells + warm.cache.dedup_cells,
            warm.samples.size());
  EXPECT_EQ(warm.cache.stored_records, 0u);

  // Cache off reproduces the same samples (ground truth).
  const analysis::Sweep off = corpus_sweep(cache::CacheMode::Off, dir);
  EXPECT_EQ(off.samples, cold.samples);
  EXPECT_EQ(off.cache.mode, "off");
}

TEST(CacheSweep, WarmResultsAreThreadCountInvariant) {
  const std::string dir = temp_store("threads");
  const analysis::Sweep cold = corpus_sweep(cache::CacheMode::ReadWrite, dir,
                                            /*threads=*/1);
  const analysis::Sweep warm4 = corpus_sweep(cache::CacheMode::Read, dir,
                                             /*threads=*/4);
  EXPECT_EQ(warm4.samples, cold.samples);
  EXPECT_EQ(warm4.cache.miss_cells, 0u);
}

TEST(CacheSweep, CorruptedRecordDegradesToAMiss) {
  const std::string dir = temp_store("corrupt");
  const analysis::Sweep cold = corpus_sweep(cache::CacheMode::ReadWrite, dir);

  // Vandalize one record: truncate it mid-file.
  const cache::CacheStore store(dir);
  std::string victim;
  store.walk(cache::record_fingerprint(),
             [&](const cache::CacheStore::WalkEntry& e) {
               if (victim.empty()) victim = e.path;
             });
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim,
                               std::filesystem::file_size(victim) / 2);

  const analysis::Sweep warm = corpus_sweep(cache::CacheMode::ReadWrite, dir);
  EXPECT_EQ(warm.samples, cold.samples);  // recomputed, not wrong
  EXPECT_GT(warm.cache.miss_cells, 0u);   // the vandalized record
  EXPECT_GT(warm.cache.hit_cells, 0u);    // everything else still hits
  EXPECT_GT(warm.cache.stored_records, 0u);  // and it was repaired

  // The repair round-trips: a third run is all hits again.
  const analysis::Sweep healed = corpus_sweep(cache::CacheMode::Read, dir);
  EXPECT_EQ(healed.samples, cold.samples);
  EXPECT_EQ(healed.cache.miss_cells, 0u);
}

TEST(CacheSweep, VerifyCatchesAndRepairsPoisonedRecords) {
  const std::string dir = temp_store("verify");
  const analysis::Sweep cold = corpus_sweep(cache::CacheMode::ReadWrite, dir);

  // Poison one record with a plausible-but-wrong result: valid checksum,
  // valid keys, corrupted metrics. Only verify mode can catch this.
  const cache::CacheStore store(dir);
  std::string path;
  cache::MethodRecord poisoned;
  store.walk(cache::record_fingerprint(),
             [&](const cache::CacheStore::WalkEntry& e) {
               if (path.empty() && e.current) {
                 path = e.path;
                 poisoned = e.record;
               }
             });
  ASSERT_FALSE(path.empty());
  ASSERT_FALSE(poisoned.cells.empty());
  poisoned.cells[0].metrics.ticks += 9999;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << cache::serialize_record(poisoned);
  }

  // Read mode serves the poison (the cost of trusting the cache)…
  const analysis::Sweep tainted = corpus_sweep(cache::CacheMode::Read, dir);
  EXPECT_NE(tainted.samples, cold.samples);

  // …verify mode detects it, reports it, serves fresh results, and
  // repairs the record in place.
  const analysis::Sweep verify = corpus_sweep(cache::CacheMode::Verify, dir);
  EXPECT_EQ(verify.samples, cold.samples);
  EXPECT_GT(verify.cache.verify_mismatch_cells, 0u);
  EXPECT_GT(verify.cache.stored_records, 0u);

  const analysis::Sweep clean = corpus_sweep(cache::CacheMode::Verify, dir);
  EXPECT_EQ(clean.samples, cold.samples);
  EXPECT_EQ(clean.cache.verify_mismatch_cells, 0u);
  // An intact, fully cached store makes verify read-only.
  EXPECT_EQ(clean.cache.stored_records, 0u);
}

TEST(CacheSweep, DedupSharesResultsAcrossByteIdenticalMethods) {
  Program p;
  // Two byte-identical bodies under different names/benchmarks plus one
  // genuinely different method.
  p.methods.push_back(tiny_method(p, "bm.first()I", "bench_a", 7));
  p.methods.push_back(tiny_method(p, "other.clone()I", "bench_b", 7));
  p.methods.push_back(tiny_method(p, "bm.odd()I", "bench_a", 9));
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : p.methods) methods.push_back(&m);

  analysis::SweepOptions options;
  options.cache = cache::CacheMode::Off;
  analysis::SweepOptions no_dedup = options;
  no_dedup.dedup = false;

  const analysis::Sweep deduped =
      analysis::run_sweep(methods, p.pool, {"bm.first()I"}, options);
  const analysis::Sweep plain =
      analysis::run_sweep(methods, p.pool, {"bm.first()I"}, no_dedup);

  // Identical samples — including per-method metadata (name, benchmark,
  // hot flag), which dedup must re-stamp per duplicate.
  EXPECT_EQ(deduped.samples, plain.samples);
  const std::size_t cells_per_method = deduped.samples.size() / 3;
  EXPECT_EQ(deduped.cache.dedup_cells, cells_per_method);
  EXPECT_EQ(plain.cache.dedup_cells, 0u);
  EXPECT_EQ(deduped.profile.total().cells, deduped.samples.size());
}

TEST(CacheSweep, MethodFilterSelectsMatchingSubset) {
  // The filter applies before the stride: this sweeps every 9th method
  // of the scimark subset, not the scimark members of every 9th method.
  const analysis::Sweep filtered = corpus_sweep(
      cache::CacheMode::Off, "", /*threads=*/1, /*stride=*/9, "scimark");
  ASSERT_GT(filtered.samples.size(), 0u);
  for (const analysis::SweepSample& s : filtered.samples) {
    EXPECT_NE(s.method.find("scimark"), std::string::npos) << s.method;
  }
  const analysis::Sweep none = corpus_sweep(
      cache::CacheMode::Off, "", /*threads=*/1, /*stride=*/1,
      "no.such.method.anywhere");
  EXPECT_EQ(none.samples.size(), 0u);
}

}  // namespace
}  // namespace javaflow
