// Tests for trace-driven execution: interpreter outcomes replayed on the
// DataFlow machine.
#include <gtest/gtest.h>

#include "analysis/trace.hpp"
#include "bytecode/assembler.hpp"
#include "core/javaflow.hpp"
#include "jvm/interpreter.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

TEST(Trace, CollectorRecordsBranchOutcomes) {
  Program p;
  Assembler a(p, "t.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());

  jvm::Interpreter vm(p);
  TraceCollector collector(vm);
  vm.invoke("t.loop(I)I", {jvm::Value::make_int(3)});
  // goto once + latch evaluated 4 times (3 taken + 1 exit).
  EXPECT_EQ(collector.events_for("t.loop(I)I"), 5u);
}

TEST(Trace, ReplayFollowsRealIterationCount) {
  // A loop that really runs 3 times must fire its body exactly 3 times
  // under trace replay — not the 9 times of BP-1's 90% rule.
  Program p;
  Assembler a(p, "t.loop3(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);        // 0
  a.bind(body);
  a.iinc(0, -1);        // 1
  a.bind(test);
  a.iload(0);           // 2
  a.ifgt(body);         // 3
  a.iload(0);           // 4
  a.op(Op::ireturn);    // 5
  p.methods.push_back(a.build());
  const bytecode::Method& m = p.methods.back();

  jvm::Interpreter vm(p);
  TraceCollector collector(vm);
  vm.invoke(m, {jvm::Value::make_int(3)});

  JavaFlowMachine machine(sim::config_by_name("Compact2"));
  const DeployedMethod d = machine.deploy(m, p.pool);
  ASSERT_TRUE(d.ok());
  sim::BranchPredictor trace = collector.predictor_for(m);
  const auto r = machine.execute(d, trace);
  ASSERT_TRUE(r.completed);
  // goto 1 + body 3 + (iload,ifgt) 4x + exit pair 1.
  EXPECT_EQ(r.instructions_fired, 1 + 3 + 4 + 4 + 1 + 1);

  // The synthetic BP-1 scenario runs the loop 9 times instead.
  const auto bp1 = machine.execute(d, sim::BranchPredictor::Scenario::BP1);
  EXPECT_EQ(bp1.instructions_fired, 1 + 9 + 10 + 10 + 1 + 1);
}

TEST(Trace, SwitchArmsReplayInOrder) {
  Program p;
  Assembler a(p, "t.sw(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto c0 = a.new_label(), c1 = a.new_label(), dflt = a.new_label();
  a.iload(0);
  a.tableswitch(0, {c0, c1}, dflt);
  a.bind(c0);
  a.iconst(10).op(Op::ireturn);
  a.bind(c1);
  a.iconst(11).op(Op::ireturn);
  a.bind(dflt);
  a.iconst(-1).op(Op::ireturn);
  p.methods.push_back(a.build());
  const bytecode::Method& m = p.methods.back();

  jvm::Interpreter vm(p);
  TraceCollector collector(vm);
  vm.invoke(m, {jvm::Value::make_int(1)});  // arm 1

  JavaFlowMachine machine(sim::config_by_name("Compact2"));
  const DeployedMethod d = machine.deploy(m, p.pool);
  sim::BranchPredictor trace = collector.predictor_for(m);
  const auto r = machine.execute(d, trace);
  ASSERT_TRUE(r.completed);
  // Path: iload, tableswitch, iconst_11's return pair => 4 fired.
  EXPECT_EQ(r.instructions_fired, 4);
}

TEST(Trace, DetachStopsRecording) {
  Program p;
  Assembler a(p, "t.m(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto skip = a.new_label();
  a.iload(0).ifle(skip);
  a.iinc(0, 1);
  a.bind(skip);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());

  jvm::Interpreter vm(p);
  TraceCollector collector(vm);
  vm.invoke("t.m(I)I", {jvm::Value::make_int(1)});
  const std::size_t before = collector.events_for("t.m(I)I");
  collector.detach();
  vm.invoke("t.m(I)I", {jvm::Value::make_int(1)});
  EXPECT_EQ(collector.events_for("t.m(I)I"), before);
}

TEST(Trace, EmptyTraceTerminatesExecution) {
  // With no recorded outcomes, Trace mode exits loops immediately so the
  // machine still completes (the predictor's safety default).
  Program p;
  Assembler a(p, "t.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());

  JavaFlowMachine machine(sim::config_by_name("Compact2"));
  const DeployedMethod d = machine.deploy(p.methods.back(), p.pool);
  sim::BranchPredictor empty(sim::BranchPredictor::Scenario::Trace);
  const auto r = machine.execute(d, empty);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace javaflow::analysis
