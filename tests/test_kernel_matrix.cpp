// The full kernel x configuration execution matrix: every hand-written
// kernel deploys, resolves and completes on every Table 15 configuration
// under both branch scenarios, with internally consistent metrics.
#include <gtest/gtest.h>

#include <tuple>

#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

constexpr std::size_t kKernelCount = 66;

const workloads::Corpus& corpus() {
  static workloads::Corpus c = [] {
    workloads::CorpusOptions opt;
    opt.total_methods = 0;
    return workloads::make_corpus(opt);
  }();
  return c;
}

using MatrixParam = std::tuple<std::size_t, std::string>;

class KernelMatrix : public ::testing::TestWithParam<MatrixParam> {};

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllConfigs, KernelMatrix,
    ::testing::Combine(::testing::Range<std::size_t>(0, kKernelCount),
                       ::testing::Values("Baseline", "Compact10",
                                         "Compact4", "Compact2", "Sparse2",
                                         "Hetero2")),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string n =
          corpus().program.methods[std::get<0>(info.param)].name + "_" +
          std::get<1>(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST_P(KernelMatrix, DeploysAndCompletes) {
  const auto& c = corpus();
  const auto [index, config] = GetParam();
  ASSERT_EQ(c.program.methods.size(), kKernelCount)
      << "kernel count changed; update kKernelCount";
  const bytecode::Method& m = c.program.methods[index];

  JavaFlowMachine machine(sim::config_by_name(config));
  const DeployedMethod d = machine.deploy(m, c.program.pool);
  ASSERT_TRUE(d.ok()) << m.name;
  EXPECT_EQ(d.resolution.back_merges, 0) << m.name;
  // Every consumer side has at least one resolved producer.
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    for (int side = 1; side <= m.code[i].pop; ++side) {
      EXPECT_FALSE(
          d.resolution.graph
              .producers_of(static_cast<std::int32_t>(i),
                            static_cast<std::uint8_t>(side))
              .empty())
          << m.name << " @" << i << " side " << side;
    }
  }

  for (const auto scenario : {sim::BranchPredictor::Scenario::BP1,
                              sim::BranchPredictor::Scenario::BP2}) {
    const sim::RunMetrics r = machine.execute(d, scenario);
    ASSERT_TRUE(r.completed) << m.name << " on " << config;
    EXPECT_FALSE(r.timed_out) << m.name;
    EXPECT_FALSE(r.exception) << m.name;
    // Metric sanity: counts hang together.
    EXPECT_GT(r.instructions_fired, 0) << m.name;
    EXPECT_GE(r.instructions_fired, r.distinct_fired) << m.name;
    EXPECT_LE(r.distinct_fired, r.static_size) << m.name;
    EXPECT_GT(r.mesh_cycles, 0) << m.name;
    EXPECT_GE(r.ticks_exec_1plus, r.ticks_exec_2plus) << m.name;
    EXPECT_LE(r.ipc(), 16.0) << m.name;  // bounded by issue capacity
    if (config == "Baseline") {
      EXPECT_EQ(r.max_slot + 1, r.static_size) << m.name;
    }
  }
}

}  // namespace
}  // namespace javaflow
