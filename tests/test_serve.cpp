// Multi-tenant serving core (docs/SERVING.md).
//
// The contract under test, in three layers:
//   * sim::MultiEngine — a single residency must reproduce Engine::run
//     bit for bit (RunMetrics field for field), any row-aligned shifted
//     residency must match modulo its slot offset, and co-resident
//     methods must genuinely overlap (ticks_res_2plus > 0) while every
//     completion stays deterministic;
//   * core::FabricManager — plan sharing across aligned residencies and
//     the persistent-engine execute path (tests/test_fabric_manager.cpp
//     holds the load/unload/GC edge cases);
//   * serve::FabricServer — seeded request streams, admission queueing,
//     LRU eviction, latency percentiles, and a bit-stable report digest
//     across repeated runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "serve/request_stream.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/multi_engine.hpp"
#include "sim/plan.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using sim::BranchPredictor;
using sim::ExecPlan;
using sim::ExecPlanBuilder;
using sim::MultiEngine;
using sim::RunMetrics;

// A loop over an array load: backward transfer, TAIL replay, memory
// ordering, mesh traffic — the full §6.3 event mix.
Program loop_program() {
  Program p;
  Assembler a(p, "serve.loop(IA)I", "serve");
  a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.goto_(test);
  a.bind(body);
  a.aload(1).iload(0).op(Op::iaload).istore(0);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(0).op(Op::ireturn);
  p.methods.push_back(a.build());
  return p;
}

const workloads::Corpus& shared_corpus() {
  static const workloads::Corpus corpus = workloads::make_corpus({});
  return corpus;
}

RunMetrics single_run(const sim::MachineConfig& cfg,
                      const bytecode::Method& m, const ExecPlan& plan,
                      BranchPredictor::Scenario scenario) {
  sim::Engine engine(cfg);
  BranchPredictor predictor(scenario);
  return engine.run(m, plan, predictor);
}

RunMetrics multi_run(const sim::MachineConfig& cfg,
                     const bytecode::Method& m, const ExecPlan& plan,
                     std::int32_t phys_delta,
                     BranchPredictor::Scenario scenario) {
  sim::MultiEngineOptions options;
  options.max_ticks = 4'000'000;  // EngineOptions default
  MultiEngine engine(cfg, options);
  const sim::ResidentId id =
      engine.admit(m, plan, phys_delta, scenario, /*start_tick=*/0);
  EXPECT_GE(id, 0);
  while (engine.advance().has_value()) {
  }
  const sim::ResidentOutcome* out = engine.outcome(id);
  EXPECT_NE(out, nullptr);
  return out->metrics;
}

// ---- single-resident parity ----

// One residency at phys_delta 0 is the single-method engine: every
// RunMetrics field must agree, on every Table 15 config and scenario.
TEST(MultiEngineParity, SingleResidentMatchesEngineOnAllConfigs) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    const ExecPlan plan =
        ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);
    for (const auto scenario : {BranchPredictor::Scenario::BP1,
                                BranchPredictor::Scenario::BP2}) {
      const RunMetrics ref = single_run(cfg, p.methods[0], plan, scenario);
      const RunMetrics got =
          multi_run(cfg, p.methods[0], plan, 0, scenario);
      ASSERT_EQ(got, ref) << cfg.name;
    }
  }
}

// The same parity over a real corpus slice: every method whose index is
// a multiple of the stride, on two structurally different configs.
TEST(MultiEngineParity, SingleResidentMatchesEngineOnCorpusStride) {
  const workloads::Corpus& corpus = shared_corpus();
  std::vector<sim::MachineConfig> configs;
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    if (cfg.name == "Compact2" || cfg.name == "Hetero2") {
      configs.push_back(cfg);
    }
  }
  ASSERT_EQ(configs.size(), 2u);
  ExecPlanBuilder builder;
  for (const sim::MachineConfig& cfg : configs) {
    for (std::size_t i = 0; i < corpus.program.methods.size(); i += 64) {
      const bytecode::Method& m = corpus.program.methods[i];
      const fabric::DataflowGraph graph =
          fabric::build_dataflow_graph(m, corpus.program.pool);
      ExecPlan plan;
      builder.build_into(plan, m, graph, nullptr, cfg);
      if (!plan.fits()) continue;
      for (const auto scenario : {BranchPredictor::Scenario::BP1,
                                  BranchPredictor::Scenario::BP2}) {
        const RunMetrics ref = single_run(cfg, m, plan, scenario);
        const RunMetrics got = multi_run(cfg, m, plan, 0, scenario);
        ASSERT_EQ(got, ref) << cfg.name << " " << m.name;
      }
    }
  }
}

// A row-aligned shift is invisible to the timing model: serial hops,
// anchor arithmetic, and (by the serpentine x-mirror argument in
// docs/SERVING.md) all Manhattan mesh distances are preserved, so the
// only field allowed to move is max_slot.
TEST(MultiEngineParity, RowAlignedShiftOnlyMovesMaxSlot) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    const ExecPlan plan =
        ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);
    const std::int32_t phys_delta = 2 * cfg.width;  // two rows down
    RunMetrics ref =
        multi_run(cfg, p.methods[0], plan, 0, BranchPredictor::Scenario::BP1);
    const RunMetrics got = multi_run(cfg, p.methods[0], plan, phys_delta,
                                     BranchPredictor::Scenario::BP1);
    ASSERT_EQ(got.max_slot,
              ref.max_slot + phys_delta * std::max(cfg.idus_per_node, 1))
        << cfg.name;
    ref.max_slot = got.max_slot;
    ASSERT_EQ(got, ref) << cfg.name;
  }
}

// ---- multi-tenant execution ----

// Two co-resident loops on disjoint rows genuinely overlap: some tick
// span has instructions from *distinct residencies* executing at once.
TEST(MultiEngineOverlap, CoResidentMethodsExecuteSimultaneously) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  for (const sim::MachineConfig& cfg : sim::table15_configs()) {
    const ExecPlan plan =
        ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);
    MultiEngine engine(cfg);
    ASSERT_GE(engine.admit(p.methods[0], plan, 0,
                           BranchPredictor::Scenario::BP1, 0),
              0);
    ASSERT_GE(engine.admit(p.methods[0], plan, 2 * cfg.width,
                           BranchPredictor::Scenario::BP1, 0),
              0);
    int completions = 0;
    while (engine.advance().has_value()) ++completions;
    ASSERT_EQ(completions, 2) << cfg.name;
    const sim::MultiRunMetrics agg = engine.finish();
    EXPECT_GT(agg.ticks_res_2plus, 0) << cfg.name;
    EXPECT_GE(agg.ticks_res_1plus, agg.ticks_res_2plus) << cfg.name;
    EXPECT_GE(agg.ticks_exec_2plus, agg.ticks_res_2plus) << cfg.name;
    for (const sim::ResidentOutcome& out : agg.residents) {
      EXPECT_TRUE(out.metrics.completed) << cfg.name;
    }
  }
}

// Both residencies funnel MemRead/GPP traffic into the same four ring
// channels; a residency never waits on its own requests, so with a lone
// residency the wait is zero, and the aggregate equals the per-resident
// sum by construction.
TEST(MultiEngineOverlap, RingWaitsAppearOnlyUnderCoResidency) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const sim::MachineConfig cfg = sim::table15_configs()[0];
  const ExecPlan plan =
      ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);

  MultiEngine solo(cfg);
  solo.admit(p.methods[0], plan, 0, BranchPredictor::Scenario::BP1, 0);
  while (solo.advance().has_value()) {
  }
  const sim::MultiRunMetrics solo_agg = solo.finish();
  EXPECT_EQ(solo_agg.serial_wait_ticks, 0);
  EXPECT_EQ(solo_agg.mesh_wait_ticks, 0);
  EXPECT_EQ(solo_agg.ring_wait_ticks, 0);

  MultiEngine duo(cfg);
  duo.admit(p.methods[0], plan, 0, BranchPredictor::Scenario::BP1, 0);
  duo.admit(p.methods[0], plan, 2 * cfg.width,
            BranchPredictor::Scenario::BP1, 0);
  while (duo.advance().has_value()) {
  }
  const sim::MultiRunMetrics agg = duo.finish();
  std::int64_t serial = 0, mesh = 0, ring = 0;
  for (const sim::ResidentOutcome& out : agg.residents) {
    serial += out.serial_wait_ticks;
    mesh += out.mesh_wait_ticks;
    ring += out.ring_wait_ticks;
  }
  EXPECT_EQ(agg.serial_wait_ticks, serial);
  EXPECT_EQ(agg.mesh_wait_ticks, mesh);
  EXPECT_EQ(agg.ring_wait_ticks, ring);
  // Identical loops issuing identical ring requests at identical ticks:
  // the second residency must queue behind the first on some channel.
  EXPECT_GT(agg.ring_wait_ticks, 0);
}

// Repeated multi-tenant runs with the same admissions are bit-identical
// — outcome by outcome, aggregate by aggregate.
TEST(MultiEngineDeterminism, RepeatedRunsAreBitIdentical) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const sim::MachineConfig cfg = sim::table15_configs()[1];
  const ExecPlan plan =
      ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);

  auto run_once = [&] {
    MultiEngine engine(cfg);
    engine.admit(p.methods[0], plan, 0, BranchPredictor::Scenario::BP1, 0);
    engine.admit(p.methods[0], plan, 2 * cfg.width,
                 BranchPredictor::Scenario::BP2, 3);
    engine.admit(p.methods[0], plan, 4 * cfg.width,
                 BranchPredictor::Scenario::BP1, 17);
    std::vector<sim::ResidentId> order;
    std::optional<sim::ResidentId> done;
    while ((done = engine.advance()).has_value()) order.push_back(*done);
    return std::make_pair(order, engine.finish());
  };
  const auto [order_a, agg_a] = run_once();
  const auto [order_b, agg_b] = run_once();
  ASSERT_EQ(order_a, order_b);
  ASSERT_EQ(agg_a.residents.size(), agg_b.residents.size());
  for (std::size_t i = 0; i < agg_a.residents.size(); ++i) {
    EXPECT_EQ(agg_a.residents[i].metrics, agg_b.residents[i].metrics) << i;
    EXPECT_EQ(agg_a.residents[i].completed_tick,
              agg_b.residents[i].completed_tick)
        << i;
  }
  EXPECT_EQ(agg_a.fabric_ticks, agg_b.fabric_ticks);
  EXPECT_EQ(agg_a.ticks_res_2plus, agg_b.ticks_res_2plus);
  EXPECT_EQ(agg_a.serial_wait_ticks, agg_b.serial_wait_ticks);
  EXPECT_EQ(agg_a.mesh_wait_ticks, agg_b.mesh_wait_ticks);
  EXPECT_EQ(agg_a.ring_wait_ticks, agg_b.ring_wait_ticks);
}

// advance(until) pauses at the requested tick; admissions interleaved
// at the pause point behave exactly like admissions made up front.
TEST(MultiEngineDeterminism, PausedAdmissionsMatchUpfrontAdmissions) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const sim::MachineConfig cfg = sim::table15_configs()[0];
  const ExecPlan plan =
      ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);

  MultiEngine upfront(cfg);
  upfront.admit(p.methods[0], plan, 0, BranchPredictor::Scenario::BP1, 0);
  upfront.admit(p.methods[0], plan, 2 * cfg.width,
                BranchPredictor::Scenario::BP1, 40);
  while (upfront.advance().has_value()) {
  }
  const sim::MultiRunMetrics ref = upfront.finish();

  MultiEngine paused(cfg);
  paused.admit(p.methods[0], plan, 0, BranchPredictor::Scenario::BP1, 0);
  // Drain strictly below tick 40, then admit the second residency as a
  // serving frontend would on request arrival.
  while (paused.advance(40).has_value()) {
  }
  EXPECT_EQ(paused.now(), 40);
  paused.admit(p.methods[0], plan, 2 * cfg.width,
               BranchPredictor::Scenario::BP1, 40);
  while (paused.advance().has_value()) {
  }
  const sim::MultiRunMetrics got = paused.finish();

  ASSERT_EQ(got.residents.size(), ref.residents.size());
  for (std::size_t i = 0; i < ref.residents.size(); ++i) {
    EXPECT_EQ(got.residents[i].metrics, ref.residents[i].metrics) << i;
  }
  EXPECT_EQ(got.ticks_res_2plus, ref.ticks_res_2plus);
}

// The tick budget times every live residency out at the first
// over-budget event, mirroring the single engine's timeout semantics.
TEST(MultiEngineTimeout, OverBudgetRunsFinalizeAsTimedOut) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  const sim::MachineConfig cfg = sim::table15_configs()[0];
  const ExecPlan plan =
      ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);
  sim::MultiEngineOptions options;
  options.max_ticks = 5;  // far below any completion
  MultiEngine engine(cfg, options);
  const sim::ResidentId id =
      engine.admit(p.methods[0], plan, 0, BranchPredictor::Scenario::BP1, 0);
  int completions = 0;
  while (engine.advance().has_value()) ++completions;
  ASSERT_EQ(completions, 1);
  const sim::ResidentOutcome* out = engine.outcome(id);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->metrics.timed_out);
  EXPECT_FALSE(out->metrics.completed);
  EXPECT_EQ(out->completed_tick, -1);
  EXPECT_TRUE(engine.idle());
}

// ---- request stream ----

// A five-method serving corpus: the loop plus arithmetic chains of
// increasing length, so co-resident runtimes differ.
Program serve_program() {
  Program p;
  {
    Assembler a(p, "serve.loop(IA)I", "serve");
    a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Int);
    auto body = a.new_label(), test = a.new_label();
    a.goto_(test);
    a.bind(body);
    a.aload(1).iload(0).op(Op::iaload).istore(0);
    a.iinc(0, -1);
    a.bind(test);
    a.iload(0).ifgt(body);
    a.iload(0).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  for (int k = 1; k <= 4; ++k) {
    Assembler a(p, "serve.chain" + std::to_string(k) + "(I)I", "serve");
    a.args({ValueType::Int}).returns(ValueType::Int);
    a.iload(0);
    for (int i = 0; i < 3 * k; ++i) a.iload(0).op(Op::iadd);
    a.op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  return p;
}

std::vector<std::int32_t> all_methods(const Program& p) {
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < p.methods.size(); ++i) {
    out.push_back(static_cast<std::int32_t>(i));
  }
  return out;
}

TEST(RequestStream, DeterministicSortedAndInRange) {
  serve::RequestStreamOptions opt;
  opt.seed = 42;
  opt.num_requests = 200;
  opt.mean_gap_ticks = 16;
  const auto a = serve::make_request_stream(7, opt);
  const auto b = serve::make_request_stream(7, opt);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_EQ(a[i].method_index, b[i].method_index);
    EXPECT_EQ(a[i].arrival_tick, b[i].arrival_tick);
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    EXPECT_GE(a[i].method_index, 0);
    EXPECT_LT(a[i].method_index, 7);
    if (i > 0) EXPECT_GT(a[i].arrival_tick, a[i - 1].arrival_tick);
  }
  opt.seed = 43;
  const auto c = serve::make_request_stream(7, opt);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].method_index != c[i].method_index ||
              a[i].arrival_tick != c[i].arrival_tick;
  }
  EXPECT_TRUE(differs);
}

TEST(RequestStream, HotFractionConcentratesOnHotSet) {
  serve::RequestStreamOptions opt;
  opt.num_requests = 100;
  opt.hot_fraction_256 = 256;  // every request is hot
  opt.hot_methods = 2;
  for (const serve::Request& r : serve::make_request_stream(50, opt)) {
    EXPECT_LT(r.method_index, 2);
  }
}

// ---- serving frontend ----

// A single-method corpus serializes every request (§4.3), and each
// one's RunMetrics must be bit-identical to a plain Engine::run of the
// same (method, canonical plan, scenario) — full-stack N=1 parity.
TEST(FabricServe, SingleMethodServingMatchesEngineRun) {
  const Program p = loop_program();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(p.methods[0], p.pool);
  serve::RequestStreamOptions stream;
  stream.seed = 7;
  stream.num_requests = 6;
  stream.mean_gap_ticks = 32;
  const auto requests = serve::make_request_stream(1, stream);
  for (const sim::MachineConfig& cfg :
       {sim::config_by_name("Compact2"), sim::config_by_name("Hetero2")}) {
    const ExecPlan plan =
        ExecPlanBuilder().build(p.methods[0], graph, nullptr, cfg);
    const serve::ServeReport rep = serve::serve(p, {0}, cfg, stream);
    ASSERT_EQ(rep.requests, 6);
    ASSERT_EQ(rep.completed, 6);
    EXPECT_EQ(rep.ticks_res_2plus, 0) << "one method cannot overlap itself";
    for (const serve::RequestOutcome& o : rep.outcomes) {
      const RunMetrics ref = single_run(
          cfg, p.methods[0], plan,
          requests[static_cast<std::size_t>(o.request_id)].scenario);
      ASSERT_EQ(o.metrics, ref) << cfg.name << " req " << o.request_id;
      EXPECT_TRUE(o.plan_shared);
      EXPECT_EQ(o.latency_ticks, o.completed_tick - o.arrival_tick);
      EXPECT_GE(o.admitted_tick, o.arrival_tick);
    }
  }
}

// Distinct methods arriving faster than they finish must genuinely
// co-execute on the shared fabric.
TEST(FabricServe, HeterogeneousStreamOverlapsResidencies) {
  const Program p = serve_program();
  serve::RequestStreamOptions stream;
  stream.seed = 11;
  stream.num_requests = 32;
  stream.mean_gap_ticks = 4;
  stream.hot_fraction_256 = 0;  // uniform over all five methods
  const serve::ServeReport rep =
      serve::serve(p, all_methods(p), sim::config_by_name("Compact2"), stream);
  EXPECT_EQ(rep.completed, rep.requests);
  EXPECT_EQ(rep.rejected, 0);
  EXPECT_EQ(rep.timed_out, 0);
  EXPECT_GT(rep.ticks_res_2plus, 0);
  EXPECT_GE(rep.ticks_res_1plus, rep.ticks_res_2plus);
}

// Repeated runs produce bit-identical reports, and the digest covers
// enough state to prove it. JAVAFLOW_THREADS must not matter: the
// serving calendar is single-threaded by construction.
TEST(FabricServe, ReportIsBitIdenticalAcrossRunsAndThreadCounts) {
  const Program p = serve_program();
  serve::RequestStreamOptions stream;
  stream.seed = 20141215;
  stream.num_requests = 24;
  stream.mean_gap_ticks = 8;
  const sim::MachineConfig cfg = sim::config_by_name("Hetero2");
  const serve::ServeReport a = serve::serve(p, all_methods(p), cfg, stream);
  const serve::ServeReport b = serve::serve(p, all_methods(p), cfg, stream);
  ASSERT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].metrics, b.outcomes[i].metrics) << i;
    EXPECT_EQ(a.outcomes[i].completed_tick, b.outcomes[i].completed_tick) << i;
  }
  ::setenv("JAVAFLOW_THREADS", "7", 1);
  const serve::ServeReport c = serve::serve(p, all_methods(p), cfg, stream);
  ::unsetenv("JAVAFLOW_THREADS");
  EXPECT_EQ(a.digest(), c.digest());
}

// A tiny fabric forces the server to recycle slots: methods are evicted
// idle-LRU and reloaded, yet every request still completes.
TEST(FabricServe, LruEvictionRecyclesTinyFabric) {
  const Program p = serve_program();
  sim::MachineConfig cfg = sim::config_by_name("Compact2");
  cfg.capacity = 30;  // room for roughly two residents at a time
  serve::RequestStreamOptions stream;
  stream.seed = 3;
  stream.num_requests = 40;
  stream.mean_gap_ticks = 2;
  stream.hot_fraction_256 = 0;
  const serve::ServeReport rep = serve::serve(p, all_methods(p), cfg, stream);
  EXPECT_EQ(rep.completed, rep.requests);
  EXPECT_EQ(rep.rejected, 0);
  EXPECT_GT(rep.evictions, 0);
  EXPECT_GT(rep.loads, static_cast<std::int64_t>(p.methods.size()));
  // Every load either shared the canonical plan or paid a lowering.
  EXPECT_EQ(rep.plans_shared + rep.plans_lowered, rep.loads);
  EXPECT_GT(rep.plans_shared, 0);
}

// A method that exceeds the fabric even when empty is rejected; smaller
// methods in the same stream still complete.
TEST(FabricServe, NeverFittingMethodIsRejected) {
  Program p;
  {
    Assembler a(p, "serve.small(I)I", "serve");
    a.args({ValueType::Int}).returns(ValueType::Int);
    a.iload(0).iload(0).op(Op::iadd).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    Assembler a(p, "serve.huge(I)I", "serve");
    a.args({ValueType::Int}).returns(ValueType::Int);
    a.iload(0);
    for (int i = 0; i < 60; ++i) a.iload(0).op(Op::iadd);
    a.op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  sim::MachineConfig cfg = sim::config_by_name("Compact2");
  cfg.capacity = 20;
  serve::RequestStreamOptions stream;
  stream.seed = 9;
  stream.num_requests = 16;
  stream.hot_fraction_256 = 0;
  const serve::ServeReport rep = serve::serve(p, {0, 1}, cfg, stream);
  EXPECT_GT(rep.rejected, 0);
  EXPECT_GT(rep.completed, 0);
  EXPECT_EQ(rep.completed + rep.rejected + rep.timed_out, rep.requests);
  for (const serve::RequestOutcome& o : rep.outcomes) {
    EXPECT_EQ(o.rejected, o.method_index == 1) << o.request_id;
  }
}

// Same-method serialization backs requests up behind a busy Anchor: the
// queue visibly deepens and the latency percentiles stay ordered.
TEST(FabricServe, QueueDepthAndLatencyPercentiles) {
  const Program p = loop_program();
  serve::RequestStreamOptions stream;
  stream.seed = 5;
  stream.num_requests = 20;
  stream.mean_gap_ticks = 1;  // burst: arrivals far outpace completions
  const serve::ServeReport rep =
      serve::serve(p, {0}, sim::config_by_name("Compact2"), stream);
  ASSERT_EQ(rep.completed, rep.requests);
  EXPECT_GE(rep.max_queue_depth, 2);
  ASSERT_GE(rep.latency_p50, 0);
  EXPECT_LE(rep.latency_p50, rep.latency_p95);
  EXPECT_LE(rep.latency_p95, rep.latency_p99);
  EXPECT_LE(rep.latency_p99, rep.latency_max);
  EXPECT_GT(rep.latency_mean_x1000, 0);
  // Queued requests wait; the worst latency must exceed the best by at
  // least one full service time's worth of queueing.
  EXPECT_GT(rep.latency_max, rep.latency_p50);
}

// An over-tight fabric budget times requests out instead of hanging the
// server; accounting still balances.
TEST(FabricServe, FabricTickBudgetTimesRequestsOut) {
  const Program p = loop_program();
  serve::RequestStreamOptions stream;
  stream.seed = 2;
  stream.num_requests = 5;
  stream.mean_gap_ticks = 4;
  serve::ServeOptions options;
  options.max_fabric_ticks = 10;  // below any loop completion
  const serve::ServeReport rep = serve::serve(
      p, {0}, sim::config_by_name("Compact2"), stream, options);
  EXPECT_EQ(rep.completed, 0);
  EXPECT_EQ(rep.timed_out, rep.requests);
  for (const serve::RequestOutcome& o : rep.outcomes) {
    EXPECT_TRUE(o.timed_out);
    EXPECT_EQ(o.completed_tick, -1);
  }
}

// The digest moves when behavior moves: a different seed or a different
// config cannot collide on these small streams.
TEST(FabricServe, DigestTracksBehavior) {
  const Program p = serve_program();
  serve::RequestStreamOptions stream;
  stream.seed = 1;
  stream.num_requests = 12;
  const sim::MachineConfig compact = sim::config_by_name("Compact2");
  const serve::ServeReport base = serve::serve(p, all_methods(p), compact, stream);
  serve::RequestStreamOptions other = stream;
  other.seed = 2;
  EXPECT_NE(base.digest(),
            serve::serve(p, all_methods(p), compact, other).digest());
  EXPECT_NE(base.digest(),
            serve::serve(p, all_methods(p), sim::config_by_name("Hetero2"),
                         stream)
                .digest());
}

}  // namespace
}  // namespace javaflow
