// Tests for the DataFlow graph builder — including the paper's Figure 21
// example and the greedy needs-up equivalence property.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/resolver.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::fabric {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// Figure 21's example: three register loads, two adds, one store.
bytecode::Method figure21(Program& p) {
  Assembler a(p, "fig21.add(III)V", "test");
  a.args({ValueType::Int, ValueType::Int, ValueType::Int})
      .returns(ValueType::Void);
  a.iload(1).iload(2).op(Op::iadd);   // 0,1,2
  a.iload(0).op(Op::iadd);            // 3,4  (order differs; see below)
  a.istore(3);                        // 5
  a.op(Op::return_);                  // 6
  return a.build();
}

TEST(DataflowGraph, Figure21LinksNearestOpenPushes) {
  Program p;
  const auto m = figure21(p);
  const DataflowGraph g = build_dataflow_graph(m, p.pool);

  // iadd@2 consumes iload@1 (top of stack, side 1) and iload@0 (side 2).
  auto s1 = g.producers_of(2, 1);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].producer, 1);
  auto s2 = g.producers_of(2, 2);
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0].producer, 0);
  // iadd@4 consumes iload@3 (side 1) and iadd@2's result (side 2).
  EXPECT_EQ(g.producers_of(4, 1)[0].producer, 3);
  EXPECT_EQ(g.producers_of(4, 2)[0].producer, 2);
  // istore@5 consumes iadd@4.
  EXPECT_EQ(g.producers_of(5, 1)[0].producer, 4);
  EXPECT_EQ(g.merge_count, 0);
  EXPECT_EQ(g.back_merge_count, 0);
  EXPECT_EQ(g.total_dflows, 5);
}

TEST(DataflowGraph, DupFansOutToTwoConsumers) {
  Program p;
  Assembler a(p, "t.dup()I", "test");
  a.returns(ValueType::Int);
  a.iconst(3);          // 0
  a.op(Op::dup);        // 1
  a.op(Op::imul);       // 2: consumes both dup outputs
  a.op(Op::ireturn);    // 3
  const auto m = a.build();
  const DataflowGraph g = build_dataflow_graph(m, p.pool);
  EXPECT_EQ(g.fan_out(1), 2u);  // dup pushes twice into imul sides 1 & 2
  EXPECT_EQ(g.producers_of(2, 1)[0].producer, 1);
  EXPECT_EQ(g.producers_of(2, 2)[0].producer, 1);
}

TEST(DataflowGraph, ForwardMergeProducesTwoProducersOneSide) {
  // Figure 22's situation: both arms push a value for the same consumer
  // side.
  Program p;
  Assembler a(p, "t.merge(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto els = a.new_label(), join = a.new_label();
  a.iload(0).ifle(els);   // 0,1
  a.iconst(10);           // 2
  a.goto_(join);          // 3
  a.bind(els);
  a.iconst(20);           // 4
  a.bind(join);
  a.op(Op::ireturn);      // 5
  const auto m = a.build();
  const DataflowGraph g = build_dataflow_graph(m, p.pool);
  const auto producers = g.producers_of(5, 1);
  ASSERT_EQ(producers.size(), 2u);
  EXPECT_TRUE(producers[0].merge);
  EXPECT_TRUE(producers[1].merge);
  EXPECT_EQ(g.merge_count, 1);
  EXPECT_EQ(g.back_merge_count, 0);
}

TEST(DataflowGraph, ValuePushedBeforeBranchFansOutAcrossArms) {
  Program p;
  Assembler a(p, "t.fan(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto els = a.new_label(), join = a.new_label();
  a.iconst(7);            // 0: consumed in both arms (fan-out 2)
  a.iload(0).ifle(els);   // 1,2
  a.iconst(1).op(Op::iadd);  // 3,4
  a.goto_(join);          // 5
  a.bind(els);
  a.iconst(2).op(Op::iadd);  // 6,7
  a.bind(join);
  a.op(Op::ireturn);      // 8
  const auto m = a.build();
  const DataflowGraph g = build_dataflow_graph(m, p.pool);
  // iconst@0 feeds iadd@4 (side 2) on one arm and iadd@7 on the other.
  EXPECT_EQ(g.fan_out(0), 2u);
  EXPECT_EQ(g.producers_of(4, 2)[0].producer, 0);
  EXPECT_EQ(g.producers_of(7, 2)[0].producer, 0);
}

TEST(DataflowGraph, LoopCarriedValuesGoThroughRegistersNotArcs) {
  // JAVAC-style loop: no stack value crosses the back edge, so no edge's
  // producer is below its consumer.
  Program p;
  Assembler a(p, "t.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(0).istore(1);
  a.goto_(test);
  a.bind(body);
  a.iload(1).iload(0).op(Op::iadd).istore(1);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(1).op(Op::ireturn);
  const auto m = a.build();
  const DataflowGraph g = build_dataflow_graph(m, p.pool);
  EXPECT_EQ(g.back_merge_count, 0);
  for (const Edge& e : g.edges) {
    EXPECT_LT(e.producer, e.consumer);
  }
}

TEST(DataflowGraph, GreedyNeedsUpMatchesGraphOnStraightLine) {
  // The literal §6.2 open-push walk must agree with the abstract graph on
  // branch-free code.
  Program p;
  Assembler a(p, "t.str8()I", "test");
  a.returns(ValueType::Int);
  a.iconst(1).iconst(2).iconst(3);
  a.op(Op::iadd);
  a.op(Op::imul);
  a.iconst(4).op(Op::swap).op(Op::isub);
  a.op(Op::ireturn);
  const auto m = a.build();
  const DataflowGraph g = build_dataflow_graph(m, p.pool);
  const auto greedy = greedy_needs_up_edges(m);
  ASSERT_EQ(greedy.size(), g.edges.size());
  for (const Edge& ge : greedy) {
    const auto matches = g.producers_of(ge.consumer, ge.side);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].producer, ge.producer)
        << "consumer " << ge.consumer << " side " << int(ge.side);
  }
}

// Property suite over every hand-written kernel: the corpus-wide paper
// invariants (§5.4): no back merges, modest fan-out, every edge forward.
class KernelGraphs : public ::testing::TestWithParam<std::size_t> {
 public:
  static const workloads::Corpus& corpus() {
    static workloads::Corpus c = [] {
      workloads::CorpusOptions opt;
      opt.total_methods = 0;  // kernels only
      return workloads::make_corpus(opt);
    }();
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelGraphs,
    ::testing::Range<std::size_t>(0, 66),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string n = KernelGraphs::corpus()
                          .program.methods[info.param]
                          .name;
      std::string out;
      for (char c : n) {
        out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
      }
      return out;
    });

TEST_P(KernelGraphs, PaperInvariantsHold) {
  const auto& c = corpus();
  ASSERT_LT(GetParam(), c.program.methods.size());
  const bytecode::Method& m = c.program.methods[GetParam()];
  const DataflowGraph g = build_dataflow_graph(m, c.program.pool);
  // Table 7: zero DataFlow back merges in valid Java.
  EXPECT_EQ(g.back_merge_count, 0) << m.name;
  for (const Edge& e : g.edges) {
    EXPECT_LT(e.producer, e.consumer) << m.name;
    EXPECT_GE(e.side, 1) << m.name;
    EXPECT_LE(e.side, m.code[static_cast<std::size_t>(e.consumer)].pop)
        << m.name;
  }
  // Table 10: fan-out stays small without compiler optimization.
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    EXPECT_LE(g.fan_out(static_cast<std::int32_t>(i)), 8u) << m.name;
  }
  // Every pop of every reachable instruction has at least one producer
  // (otherwise the machine could never fire it).
  for (const Edge& e : g.edges) {
    EXPECT_GT(m.code[static_cast<std::size_t>(e.consumer)].pop, 0);
  }
}

}  // namespace
}  // namespace javaflow::fabric
