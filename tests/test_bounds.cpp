// Tests for the static bound analyzer and the token-flow model checker
// (docs/ANALYSIS.md): soundness of the tick lower bound against real
// engine runs on every Table 15 configuration, provable tightness on
// hand-crafted straight-line graphs, the JF-E008/W103 resource rules,
// deadlock proofs (including the JF-W101 token-covered back edge that
// JF-E004 cannot certify), refutation of hand-crafted deadlocking
// graphs, the cross-validation rule JF-E010, and the corpus-wide
// acceptance runs in both serial and parallel.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/figure_of_merit.hpp"
#include "analysis/lint.hpp"
#include "analysis/model_check.hpp"
#include "bytecode/assembler.hpp"
#include "bytecode/verifier.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/loader.hpp"
#include "obs/metrics.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using fabric::DataflowGraph;
using fabric::Edge;

// Same fixtures as tests/test_lint.cpp: a straight-line add and a
// counting loop whose backward branch spans the whole body.
bytecode::Method straight_line(Program& p) {
  Assembler a(p, "bounds.straight()I", "test");
  a.returns(ValueType::Int);
  a.iconst(2).iconst(3).op(Op::iadd).op(Op::ireturn);
  return a.build();
}

bytecode::Method counting_loop(Program& p) {
  Assembler a(p, "bounds.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label();
  a.bind(body);
  a.iload(0).iload(0).op(Op::iadd);  // 0,1,2
  a.istore(1);                       // 3
  a.iinc(0, -1);                     // 4
  a.iload(0).ifgt(body);             // 5,6
  a.iload(1).op(Op::ireturn);        // 7,8
  return a.build();
}

struct Built {
  bytecode::Method method;
  DataflowGraph graph;
};

Built build(Program& p, bytecode::Method m) {
  Built b;
  b.method = std::move(m);
  const bytecode::VerifyResult vr = bytecode::verify(b.method, p.pool);
  EXPECT_TRUE(vr.ok) << vr.error;
  b.graph = fabric::build_dataflow_graph(b.method, p.pool);
  return b;
}

void reindex(DataflowGraph& g, std::size_t n) {
  g.consumers_of.assign(n, {});
  for (const Edge& e : g.edges) {
    g.consumers_of[static_cast<std::size_t>(e.producer)].push_back(e);
  }
}

// Computes bounds and runs the engine on the SAME placement so measured
// ticks and buffer high-water marks are directly comparable.
struct CellResult {
  MethodBounds bounds;
  sim::RunMetrics metrics;
  obs::MetricsRegistry registry;
};

CellResult run_cell(const Built& b, const bytecode::ConstantPool& pool,
                    const sim::MachineConfig& config,
                    sim::BranchPredictor::Scenario scenario =
                        sim::BranchPredictor::Scenario::BP1) {
  CellResult r;
  const fabric::Fabric f(config.fabric_options());
  const fabric::Placement placement = fabric::load_method(f, b.method);
  EXPECT_TRUE(placement.fits) << config.name;
  r.bounds = compute_bounds(b.method, b.graph, f, placement, config);
  sim::EngineOptions options;
  options.metrics = &r.registry;
  sim::Engine engine(config, options);
  sim::BranchPredictor predictor(scenario);
  r.metrics = engine.run(b.method, b.graph, placement, predictor);
  return r;
}

// ---- timing bound: soundness and tightness ----

TEST(BoundsTiming, LowerBoundIsSoundOnEveryConfiguration) {
  Program p;
  const Built b = build(p, straight_line(p));
  for (const sim::MachineConfig& config : sim::table15_configs()) {
    const CellResult r = run_cell(b, p.pool, config);
    ASSERT_TRUE(r.metrics.completed) << config.name;
    ASSERT_TRUE(r.bounds.valid) << config.name;
    EXPECT_GT(r.bounds.lower_bound_ticks, 0) << config.name;
    EXPECT_LE(r.bounds.lower_bound_ticks, r.metrics.ticks) << config.name;
  }
}

TEST(BoundsTiming, StraightLineBoundIsTight) {
  // On a straight-line method the serial chain *is* the critical path:
  // the fixpoint must land exactly on the engine's tick count, on the
  // collapsed Baseline and on a real serial/mesh layout alike.
  Program p;
  const Built b = build(p, straight_line(p));
  for (const char* name : {"Baseline", "Compact2"}) {
    const CellResult r = run_cell(b, p.pool, sim::config_by_name(name));
    ASSERT_TRUE(r.metrics.completed) << name;
    EXPECT_EQ(r.bounds.lower_bound_ticks, r.metrics.ticks) << name;
  }
}

TEST(BoundsTiming, LoopBoundIsSoundUnderBothScenarios) {
  // The static analysis reasons about one epoch per node; the loop
  // re-fires its body, so the measured count must dominate the bound by
  // a wide margin without ever dipping under it.
  Program p;
  const Built b = build(p, counting_loop(p));
  for (const sim::MachineConfig& config : sim::table15_configs()) {
    for (const auto scenario : {sim::BranchPredictor::Scenario::BP1,
                                sim::BranchPredictor::Scenario::BP2}) {
      const CellResult r = run_cell(b, p.pool, config, scenario);
      ASSERT_TRUE(r.metrics.completed) << config.name;
      ASSERT_TRUE(r.bounds.valid) << config.name;
      EXPECT_LE(r.bounds.lower_bound_ticks, r.metrics.ticks) << config.name;
    }
  }
}

TEST(BoundsTiming, PerNodeFireTicksAreMonotoneAlongTheChain) {
  // Earliest-fire ticks of a straight-line method grow monotonically:
  // node i+1 cannot fire before its HEAD token leaves node i.
  Program p;
  const Built b = build(p, straight_line(p));
  const sim::MachineConfig config = sim::config_by_name("Compact2");
  const CellResult r = run_cell(b, p.pool, config);
  ASSERT_EQ(r.bounds.nodes.size(), b.method.code.size());
  for (std::size_t i = 1; i < r.bounds.nodes.size(); ++i) {
    EXPECT_LT(r.bounds.nodes[i - 1].fire, r.bounds.nodes[i].fire) << i;
    EXPECT_LE(r.bounds.nodes[i].head, r.bounds.nodes[i].fire) << i;
    EXPECT_LE(r.bounds.nodes[i].fire, r.bounds.nodes[i].done) << i;
  }
}

// ---- resource bounds: JF-E008 / JF-W103 ----

TEST(BoundsResources, TinyCapacityTriggersE008) {
  Program p;
  const Built b = build(p, straight_line(p));
  const sim::MachineConfig config = sim::config_by_name("Compact2");
  const fabric::Fabric f(config.fabric_options());
  const fabric::Placement placement = fabric::load_method(f, b.method);
  const MethodBounds bounds =
      compute_bounds(b.method, b.graph, f, placement, config);

  LintOptions options;
  options.node_buffer_capacity = 1;  // iadd provably needs 2 operands
  LintReport report;
  lint_bounds(b.method, config, bounds, options, report);
  ASSERT_TRUE(report.has(LintRule::BufferBoundOverflow)) << to_text(report);
  EXPECT_EQ(lint_rule_id(LintRule::BufferBoundOverflow), "JF-E008");
  EXPECT_FALSE(report.clean());

  // Roomy capacity: both rules stay silent.
  LintReport roomy;
  lint_bounds(b.method, config, bounds, {}, roomy);
  EXPECT_TRUE(roomy.findings.empty()) << to_text(roomy);
}

TEST(BoundsResources, MergeFanInAboveCapacityWarnsW103) {
  // A DataFlow merge makes the occupancy interval [pop, in-edges] wide:
  // with capacity == pop the overflow is possible but not certain, which
  // is exactly the JF-W103 severity split. A branch diamond gives the
  // join's consumer two forward producers on one side.
  Program p;
  Assembler a(p, "bounds.pick(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto els = a.new_label();
  auto join = a.new_label();
  a.iload(0).ifgt(els);     // 0,1
  a.iconst(1).goto_(join);  // 2,3
  a.bind(els);
  a.iconst(2);              // 4
  a.bind(join);
  a.op(Op::ireturn);        // 5: merged side, two producers
  Built b = build(p, a.build());

  const sim::MachineConfig config = sim::config_by_name("Compact2");
  const fabric::Fabric f(config.fabric_options());
  const fabric::Placement placement = fabric::load_method(f, b.method);
  const MethodBounds bounds =
      compute_bounds(b.method, b.graph, f, placement, config);
  ASSERT_GT(bounds.operand_hi.size(), 5u);
  ASSERT_GE(bounds.operand_hi[5], 2);  // ireturn@5 has two producers

  LintOptions options;
  options.node_buffer_capacity = 1;
  LintReport report;
  lint_bounds(b.method, config, bounds, options, report);
  EXPECT_TRUE(report.has(LintRule::BoundUnproven)) << to_text(report);
  EXPECT_EQ(lint_rule_id(LintRule::BoundUnproven), "JF-W103");

  LintOptions no_warn = options;
  no_warn.warnings = false;
  LintReport silent;
  lint_bounds(b.method, config, bounds, no_warn, silent);
  EXPECT_FALSE(silent.has(LintRule::BoundUnproven)) << to_text(silent);
}

TEST(BoundsResources, TokenBufferBoundDominatesMeasuredHighWater) {
  // The §6.3 token-conservation argument: a control node never buffers
  // more than bundle + transient duplicates. The measured per-node high
  // water of a real run must sit at or below the static bound.
  Program p;
  const Built b = build(p, counting_loop(p));
  for (const sim::MachineConfig& config : sim::table15_configs()) {
    const CellResult r = run_cell(b, p.pool, config);
    ASSERT_TRUE(r.metrics.completed) << config.name;
    for (std::size_t phys = 0; phys < r.registry.buffer_hwm_by_node.size();
         ++phys) {
      const auto hwm =
          static_cast<std::int32_t>(r.registry.buffer_hwm_by_node[phys]);
      if (hwm == 0) continue;
      EXPECT_LE(hwm,
                r.bounds.token_hi_at_phys(static_cast<std::int32_t>(phys)))
          << config.name << " phys " << phys;
    }
  }
}

// ---- cross-validation: JF-E010 ----

TEST(BoundsCrossValidation, ImpossiblyFastMetricsTriggerE010) {
  Program p;
  const Built b = build(p, straight_line(p));
  const sim::MachineConfig config = sim::config_by_name("Baseline");
  const CellResult real = run_cell(b, p.pool, config);
  ASSERT_GT(real.bounds.lower_bound_ticks, 1);

  sim::RunMetrics doctored = real.metrics;
  doctored.ticks = real.bounds.lower_bound_ticks - 1;
  LintReport report;
  check_metrics_against_bounds(b.method.name, config.name, "BP1", doctored,
                               nullptr, real.bounds, report);
  ASSERT_TRUE(report.has(LintRule::BoundViolation)) << to_text(report);
  EXPECT_EQ(lint_rule_id(LintRule::BoundViolation), "JF-E010");
  EXPECT_FALSE(report.clean());

  // The genuine measurement passes both directions.
  LintReport clean;
  check_metrics_against_bounds(b.method.name, config.name, "BP1",
                               real.metrics, &real.registry, real.bounds,
                               clean);
  EXPECT_TRUE(clean.findings.empty()) << to_text(clean);
}

TEST(BoundsCrossValidation, OverfullBufferHighWaterTriggersE010) {
  Program p;
  const Built b = build(p, counting_loop(p));
  const sim::MachineConfig config = sim::config_by_name("Compact2");
  const CellResult real = run_cell(b, p.pool, config);

  obs::MetricsRegistry doctored;
  doctored.buffer_hwm_by_node.assign(
      real.registry.buffer_hwm_by_node.size(), 0);
  // Claim one physical node buffered far beyond any provable bound.
  doctored.buffer_hwm_by_node[0] = 10000;
  for (std::size_t i = 1; i < doctored.buffer_hwm_by_node.size(); ++i) {
    doctored.buffer_hwm_by_node[i] = real.registry.buffer_hwm_by_node[i];
  }
  LintReport report;
  check_metrics_against_bounds(b.method.name, config.name, "BP1",
                               real.metrics, &doctored, real.bounds, report);
  EXPECT_TRUE(report.has(LintRule::BoundViolation)) << to_text(report);
}

// ---- model checker ----

TEST(ModelCheck, ProvesStraightLineAndLoop) {
  Program p;
  const Built line = build(p, straight_line(p));
  const ModelCheckResult r1 = model_check(line.method, line.graph);
  EXPECT_EQ(r1.verdict, ModelVerdict::Proved)
      << model_verdict_name(r1.verdict) << " " << r1.witness;

  const Built loop = build(p, counting_loop(p));
  const ModelCheckResult r2 = model_check(loop.method, loop.graph);
  EXPECT_EQ(r2.verdict, ModelVerdict::Proved)
      << model_verdict_name(r2.verdict) << " " << r2.witness;
  EXPECT_GT(r2.states_explored, r1.states_explored);
}

TEST(ModelCheck, TokenCoveredBackEdgeIsProvedWhereE004IsConservative) {
  // The JF-W101 graph from tests/test_lint.cpp: a back edge inside the
  // loop interval that the token bundle re-arms each iteration. JF-E004
  // can only warn; the model checker proves it deadlock-free.
  Program p;
  Built b = build(p, counting_loop(p));
  Edge back;
  back.producer = 5;
  back.consumer = 3;
  back.side = 1;
  back.back = true;
  back.merge = true;
  b.graph.edges.push_back(back);
  for (Edge& e : b.graph.edges) {
    if (e.consumer == 3 && e.side == 1) e.merge = true;
  }
  reindex(b.graph, b.method.code.size());

  const ModelCheckResult r = model_check(b.method, b.graph);
  EXPECT_EQ(r.verdict, ModelVerdict::Proved)
      << model_verdict_name(r.verdict) << " " << r.witness;
  LintReport report;
  lint_model_check(b.method, r, {}, report);
  EXPECT_TRUE(report.findings.empty()) << to_text(report);
}

TEST(ModelCheck, UntokenizedCycleDeadlocks) {
  // The JF-E004 graph: a back edge with no backward control transfer.
  // The consumer waits forever on an operand produced only after it
  // fires; the checker must find the stuck state and name the node.
  Program p;
  Built b = build(p, straight_line(p));
  Edge back;
  back.producer = 2;
  back.consumer = 1;
  back.side = 1;
  back.back = true;
  b.graph.edges.push_back(back);
  reindex(b.graph, b.method.code.size());

  const ModelCheckResult r = model_check(b.method, b.graph);
  ASSERT_EQ(r.verdict, ModelVerdict::Deadlock) << r.witness;
  EXPECT_GE(r.deadlock_node, 0);
  EXPECT_FALSE(r.witness.empty());

  LintReport report;
  lint_model_check(b.method, r, {}, report);
  ASSERT_TRUE(report.has(LintRule::TokenDeadlock)) << to_text(report);
  EXPECT_EQ(lint_rule_id(LintRule::TokenDeadlock), "JF-E009");
  EXPECT_FALSE(report.clean());
}

TEST(ModelCheck, StarvedOperandSideDeadlocks) {
  // Dropping every producer of iadd@2 side 1 (the JF-E001 corruption)
  // must also be caught dynamically: the abstract bundle reaches the
  // Return but the unfired iadd can never be served.
  Program p;
  Built b = build(p, straight_line(p));
  std::erase_if(b.graph.edges, [](const Edge& e) {
    return e.consumer == 2 && e.side == 1;
  });
  reindex(b.graph, b.method.code.size());

  const ModelCheckResult r = model_check(b.method, b.graph);
  EXPECT_EQ(r.verdict, ModelVerdict::Deadlock) << r.witness;
}

TEST(ModelCheck, TinyStateBudgetIsInconclusiveNeverWrong) {
  Program p;
  const Built b = build(p, counting_loop(p));
  ModelCheckOptions options;
  options.max_states = 1;
  const ModelCheckResult r = model_check(b.method, b.graph, options);
  EXPECT_EQ(r.verdict, ModelVerdict::Inconclusive);
  LintReport report;
  lint_model_check(b.method, r, {}, report);
  EXPECT_TRUE(report.has(LintRule::BoundUnproven)) << to_text(report);
  EXPECT_TRUE(report.clean());  // warning severity only
}

// ---- corpus-wide acceptance ----

TEST(BoundsCorpus, FullCorpusIsCleanOnEveryConfiguration) {
  const workloads::Corpus corpus = workloads::make_corpus({});
  const LintReport report = bounds_corpus(
      corpus.program, sim::table15_configs(), {}, /*threads=*/0);
  EXPECT_EQ(report.errors, 0) << to_text(report);
  EXPECT_EQ(report.warnings, 0) << to_text(report);
  EXPECT_EQ(report.methods_linted, corpus.program.methods.size());
}

TEST(BoundsCorpus, ParallelAndSerialReportsAgree) {
  workloads::CorpusOptions options;
  options.total_methods = 120;
  const workloads::Corpus corpus = workloads::make_corpus(options);
  const std::vector<sim::MachineConfig> configs = {
      sim::config_by_name("Compact2")};
  const LintReport serial =
      bounds_corpus(corpus.program, configs, {}, /*threads=*/1);
  const LintReport parallel =
      bounds_corpus(corpus.program, configs, {}, /*threads=*/4);
  EXPECT_EQ(serial.findings, parallel.findings);
  EXPECT_EQ(serial.errors, parallel.errors);
  EXPECT_EQ(serial.warnings, parallel.warnings);
}

TEST(ModelCheckCorpus, FullCorpusProvesDeadlockFreedom) {
  const workloads::Corpus corpus = workloads::make_corpus({});
  const LintReport report =
      model_check_corpus(corpus.program, {}, /*threads=*/0);
  EXPECT_EQ(report.errors, 0) << to_text(report);
  EXPECT_EQ(report.warnings, 0) << to_text(report);
  EXPECT_EQ(report.methods_linted, corpus.program.methods.size());
}

// ---- sweep integration: SweepOptions::check_bounds ----

TEST(SweepBounds, StridedCorpusSweepValidatesBothDirections) {
  // Every executed cell asserts lower_bound <= ticks AND measured buffer
  // high water <= static token bound, on all six configurations under
  // both branch scenarios. Any violation would land as JF-E010.
  const workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  for (const auto& m : corpus.program.methods) methods.push_back(&m);

  SweepOptions options;
  options.stride = 16;
  options.threads = 0;
  options.allow_oversubscribe = true;
  options.check_bounds = true;
  options.cache = cache::CacheMode::Off;
  const Sweep sweep = run_sweep(methods, corpus.program.pool, {}, options);
  EXPECT_FALSE(sweep.samples.empty());
  EXPECT_EQ(sweep.lint_errors, 0) << to_text(LintReport{
      sweep.lint_findings, sweep.lint_errors, sweep.lint_warnings, 0, 0});
}

TEST(SweepBounds, CacheServedCellsAreStillChecked) {
  // A warm read-mode sweep serves whole methods from the record; bounds
  // mode must still assert the ticks direction on those cached cells
  // (the JF-E010 replay check used by JAVAFLOW_CACHE=verify).
  const std::string dir =
      ::testing::TempDir() + "javaflow_bounds_cache";
  std::filesystem::remove_all(dir);

  const workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  for (const auto& m : corpus.program.methods) methods.push_back(&m);

  SweepOptions options;
  options.stride = 128;
  options.threads = 0;
  options.allow_oversubscribe = true;
  options.cache = cache::CacheMode::ReadWrite;
  options.cache_dir = dir;
  const Sweep cold = run_sweep(methods, corpus.program.pool, {}, options);
  EXPECT_GT(cold.cache.stored_records, 0u);

  options.check_bounds = true;
  options.cache = cache::CacheMode::Read;
  const Sweep warm = run_sweep(methods, corpus.program.pool, {}, options);
  EXPECT_GT(warm.cache.hit_cells, 0u);
  EXPECT_EQ(warm.lint_errors, 0) << to_text(LintReport{
      warm.lint_findings, warm.lint_errors, warm.lint_warnings, 0, 0});
  EXPECT_EQ(warm.samples.size(), cold.samples.size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace javaflow::analysis
