// Tests for the JAVAP-style disassembler.
#include <gtest/gtest.h>

#include "bytecode/assembler.hpp"
#include "bytecode/printer.hpp"

namespace javaflow::bytecode {
namespace {

TEST(Printer, FormatsOperandKinds) {
  Program p2;
  p2.classes["C"] = ClassDef{"C", {{"f", ValueType::Int}}, {}};
  Assembler b(p2, "t.all(AI)I", "bm");
  b.args({ValueType::Ref, ValueType::Int}).returns(ValueType::Int);
  auto skip2 = b.new_label();
  b.iload(1);
  b.emit_local(Op::iload, 9);
  b.op(Op::iadd);
  b.iinc(1, -3);
  b.iconst(1000);
  b.op(Op::iadd);
  b.ifle(skip2);
  b.aload(0).getfield("C", "f", ValueType::Int).op(Op::pop);
  b.bind(skip2);
  b.iload(1);
  b.invokestatic("x.y(I)I", 1, ValueType::Int);
  b.op(Op::ireturn);
  const Method m = b.build();
  const std::string text = disassemble(m, p2.pool);

  EXPECT_NE(text.find("iload_1"), std::string::npos);
  EXPECT_NE(text.find(" r9"), std::string::npos);
  EXPECT_NE(text.find("r1, -3"), std::string::npos);
  EXPECT_NE(text.find("sipush"), std::string::npos);
  EXPECT_NE(text.find(" 1000"), std::string::npos);
  EXPECT_NE(text.find("-> "), std::string::npos);           // branch target
  EXPECT_NE(text.find("<field C.f>"), std::string::npos);   // cp field
  EXPECT_NE(text.find("<method x.y(I)I>"), std::string::npos);
  EXPECT_NE(text.find("locals="), std::string::npos);
}

TEST(Printer, FormatsSwitchTables) {
  Program p;
  Assembler a(p, "t.sw(I)I", "bm");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto c0 = a.new_label(), dflt = a.new_label();
  a.iload(0);
  a.tableswitch(7, {c0}, dflt);
  a.bind(c0);
  a.iconst(1).op(Op::ireturn);
  a.bind(dflt);
  a.iconst(0).op(Op::ireturn);
  const Method m = a.build();
  const std::string text = disassemble(m, p.pool);
  EXPECT_NE(text.find("tableswitch"), std::string::npos);
  EXPECT_NE(text.find("7->2"), std::string::npos);
  EXPECT_NE(text.find("default->4"), std::string::npos);
}

TEST(Printer, FormatsConstants) {
  Program p;
  Assembler a(p, "t.c()D", "bm");
  a.returns(ValueType::Double);
  a.sconst("hi").op(Op::pop);
  a.iconst(1 << 20).op(Op::pop);
  a.dconst(0.125);
  a.op(Op::dreturn);
  const Method m = a.build();
  const std::string text = disassemble(m, p.pool);
  EXPECT_NE(text.find("<str \"hi\">"), std::string::npos);
  EXPECT_NE(text.find("<int 1048576>"), std::string::npos);
  EXPECT_NE(text.find("<double 0.125>"), std::string::npos);
}

TEST(Printer, SingleInstructionFormat) {
  Program p;
  Assembler a(p, "t.one()V", "bm");
  a.returns(ValueType::Void);
  a.op(Op::nop);
  a.op(Op::return_);
  const Method m = a.build();
  EXPECT_NE(format_instruction(m, 0, p.pool).find("nop"),
            std::string::npos);
  EXPECT_NE(format_instruction(m, 1, p.pool).find("return_"),
            std::string::npos);
}

}  // namespace
}  // namespace javaflow::bytecode
