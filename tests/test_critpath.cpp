// Tests for the critical-path attribution profiler and run-snapshot
// subsystem (docs/OBSERVABILITY.md "Attribution"):
//   * the key invariant — attributed categories sum exactly to
//     RunMetrics.ticks — for every cell of a stride-32 sweep across all
//     six Table 15 configurations and both branch scenarios;
//   * the static lower bound never exceeds the attributed ticks;
//   * a flight recorder attached to an engine never changes results;
//   * snapshot round trips are byte-stable, every single-byte flip is
//     rejected, a snapshot diffed against itself is identical, and
//     serial vs parallel sweeps produce byte-identical snapshots.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/explain.hpp"
#include "analysis/figure_of_merit.hpp"
#include "analysis/report.hpp"
#include "cache/key.hpp"
#include "fabric/dataflow_graph.hpp"
#include "obs/critpath.hpp"
#include "obs/snapshot.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/multi_engine.hpp"
#include "workloads/corpus.hpp"

namespace javaflow {
namespace {

const workloads::Corpus& corpus() {
  static const workloads::Corpus c = workloads::make_corpus({});
  return c;
}

analysis::Sweep attribution_sweep(int threads) {
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus().program.methods) {
    methods.push_back(&m);
  }
  analysis::SweepOptions options;
  options.stride = 32;  // the CI smoke stride: a real corpus slice
  options.threads = threads;
  options.allow_oversubscribe = true;
  options.attribution = true;
  options.cache = cache::CacheMode::Off;
  return analysis::run_sweep(methods, corpus().program.pool, {}, options);
}

obs::Snapshot stride32_snapshot(int threads) {
  analysis::SnapshotBuildOptions options;
  options.stride = 32;
  options.threads = threads;
  options.allow_oversubscribe = true;
  return analysis::build_snapshot(corpus(), options);
}

// ---- the key invariant ----

TEST(Attribution, CategoriesSumToTicksAcrossAllConfigsAndScenarios) {
  const analysis::Sweep sweep = attribution_sweep(1);
  ASSERT_EQ(sweep.configs.size(), 6u);  // all six Table 15 configs
  ASSERT_EQ(sweep.attribution.size(), sweep.samples.size());
  ASSERT_FALSE(sweep.samples.empty());

  std::size_t attributed = 0;
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    const analysis::SweepSample& s = sweep.samples[i];
    const analysis::CellAttribution& cell = sweep.attribution[i];
    if (!s.metrics.fits || !s.metrics.completed || s.metrics.timed_out) {
      EXPECT_FALSE(cell.valid)
          << s.method << " on " << sweep.configs[s.config_index].name;
      continue;
    }
    ASSERT_TRUE(cell.valid)
        << s.method << " on " << sweep.configs[s.config_index].name
        << " scenario " << static_cast<int>(s.scenario);
    EXPECT_EQ(cell.total(), s.metrics.ticks)
        << s.method << " on " << sweep.configs[s.config_index].name;
    ++attributed;
  }
  EXPECT_GT(attributed, 0u);
}

TEST(Attribution, EveryConfigAndScenarioHasAttributedCells) {
  const analysis::Sweep sweep = attribution_sweep(1);
  std::vector<int> per_config(sweep.configs.size(), 0);
  int bp1 = 0, bp2 = 0;
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    if (!sweep.attribution[i].valid) continue;
    ++per_config[sweep.samples[i].config_index];
    (sweep.samples[i].scenario == sim::BranchPredictor::Scenario::BP1
         ? bp1
         : bp2)++;
  }
  for (std::size_t ci = 0; ci < per_config.size(); ++ci) {
    EXPECT_GT(per_config[ci], 0) << sweep.configs[ci].name;
  }
  EXPECT_GT(bp1, 0);
  EXPECT_GT(bp2, 0);
}

TEST(Attribution, IdenticalAcrossThreadCountsAndSchedulers) {
  const analysis::Sweep serial = attribution_sweep(1);
  const analysis::Sweep parallel = attribution_sweep(4);
  EXPECT_EQ(serial.samples, parallel.samples);
  EXPECT_EQ(serial.attribution, parallel.attribution);
}

TEST(Attribution, RecorderNeverChangesRunMetrics) {
  const bytecode::Method& m = corpus().program.methods.front();
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(m, corpus().program.pool);
  for (const sim::MachineConfig& config : sim::table15_configs()) {
    sim::Engine plain(config);
    sim::BranchPredictor p1(sim::BranchPredictor::Scenario::BP1);
    const sim::RunMetrics without = plain.run(m, graph, p1);

    obs::FlightRecorder flight;
    sim::EngineOptions options;
    options.flight = &flight;
    sim::Engine instrumented(config, options);
    sim::BranchPredictor p2(sim::BranchPredictor::Scenario::BP1);
    const sim::RunMetrics with = instrumented.run(m, graph, p2);

    EXPECT_EQ(without, with) << config.name;
  }
}

TEST(Attribution, DetailStepsAreContiguousAndSumToTicks) {
  const bytecode::Method& m = corpus().program.methods.front();
  const analysis::Explanation ex = analysis::explain_method(
      m, corpus().program.pool, sim::config_by_name("Compact2"),
      sim::BranchPredictor::Scenario::BP1);
  ASSERT_TRUE(ex.ok) << ex.error;
  ASSERT_FALSE(ex.attribution.steps.empty());
  EXPECT_EQ(ex.attribution.steps.front().from_tick, 0);
  EXPECT_EQ(ex.attribution.steps.back().to_tick, ex.metrics.ticks);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < ex.attribution.steps.size(); ++i) {
    const obs::PathStep& s = ex.attribution.steps[i];
    if (i > 0) {
      EXPECT_EQ(s.from_tick, ex.attribution.steps[i - 1].to_tick);
    }
    sum += s.ticks();
  }
  EXPECT_EQ(sum, ex.metrics.ticks);
  EXPECT_EQ(ex.attribution.total(), ex.metrics.ticks);
}

TEST(Attribution, RowsAndReportJsonCarryTheCategoryTotals) {
  const analysis::Sweep sweep = attribution_sweep(1);
  const std::vector<analysis::AttributionRow> rows =
      analysis::attribution_rows(sweep);
  ASSERT_EQ(rows.size(), sweep.configs.size());
  for (const analysis::AttributionRow& row : rows) {
    ASSERT_GT(row.samples, 0u) << row.config;
    std::int64_t sum = 0;
    for (const std::int64_t v : row.category_ticks) sum += v;
    EXPECT_EQ(sum, row.total_ticks) << row.config;
  }
  std::ostringstream os;
  analysis::write_sweep_json(os, sweep);
  EXPECT_NE(os.str().find("\"attribution\""), std::string::npos);
  EXPECT_NE(os.str().find("\"tail_hold\""), std::string::npos);
}

// ---- static bound vs realized path ----

TEST(Snapshot, LowerBoundNeverExceedsAttributedTicks) {
  const obs::Snapshot snap = stride32_snapshot(1);
  ASSERT_FALSE(snap.cells.empty());
  std::size_t bounded = 0;
  for (const obs::SnapshotCell& cell : snap.cells) {
    if (cell.lower_bound < 0) continue;
    EXPECT_LE(cell.lower_bound, cell.ticks)
        << cell.method << " on "
        << snap.config_names[static_cast<std::size_t>(cell.config_index)];
    ++bounded;
  }
  EXPECT_GT(bounded, 0u);
}

// ---- snapshot round trips and integrity ----

TEST(Snapshot, RoundTripIsByteStable) {
  const obs::Snapshot snap = stride32_snapshot(1);
  const std::string bytes = obs::serialize_snapshot(snap);
  obs::Snapshot loaded;
  ASSERT_TRUE(obs::deserialize_snapshot(bytes, loaded));
  EXPECT_EQ(loaded, snap);
  EXPECT_EQ(obs::serialize_snapshot(loaded), bytes);
  EXPECT_NE(obs::snapshot_digest(bytes), 0u);
}

TEST(Snapshot, EveryByteFlipIsRejected) {
  // A small snapshot so the exhaustive flip stays fast.
  obs::Snapshot snap;
  snap.scheduler = "calendar";
  snap.stride = 32;
  snap.config_names = {"Baseline", "Compact2"};
  snap.config_texts = {"cfg:Baseline", "cfg:Compact2"};
  for (int i = 0; i < 4; ++i) {
    obs::SnapshotCell cell;
    cell.method = "m" + std::to_string(i);
    cell.config_index = i % 2;
    cell.scenario = static_cast<std::uint8_t>(i / 2);
    cell.fits = cell.completed = true;
    cell.attributed = true;
    cell.ticks = 100 + i;
    cell.lower_bound = 50 + i;
    cell.category_ticks[0] = 60 + i;
    cell.category_ticks[4] = 40;
    snap.cells.push_back(cell);
  }
  const std::string bytes = obs::serialize_snapshot(snap);
  obs::Snapshot loaded;
  ASSERT_TRUE(obs::deserialize_snapshot(bytes, loaded));
  ASSERT_EQ(loaded, snap);

  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(
          static_cast<std::uint8_t>(corrupt[i]) ^ flip);
      obs::Snapshot out;
      EXPECT_FALSE(obs::deserialize_snapshot(corrupt, out))
          << "flip 0x" << std::hex << static_cast<int>(flip)
          << " at byte " << std::dec << i << " was accepted";
    }
  }
  // Truncation and trailing garbage are rejected too.
  obs::Snapshot out;
  EXPECT_FALSE(obs::deserialize_snapshot(
      std::string_view(bytes).substr(0, bytes.size() - 1), out));
  EXPECT_FALSE(obs::deserialize_snapshot(bytes + '\0', out));
  EXPECT_FALSE(obs::deserialize_snapshot("", out));
}

TEST(Snapshot, SelfDiffIsIdenticalAndEmpty) {
  const obs::Snapshot snap = stride32_snapshot(1);
  const obs::SnapshotDiff d = obs::diff_snapshots(snap, snap);
  EXPECT_TRUE(d.comparable);
  EXPECT_TRUE(d.identical);
  EXPECT_TRUE(d.notes.empty());
  EXPECT_TRUE(d.changed.empty());
  EXPECT_EQ(d.matched, snap.cells.size());
  EXPECT_EQ(d.net_tick_drift, 0);
  for (const std::int64_t v : d.net_category_drift) EXPECT_EQ(v, 0);

  std::ostringstream text;
  obs::write_diff_text(text, d);
  EXPECT_NE(text.str().find("identical"), std::string::npos);
}

TEST(Snapshot, DiffDetectsDriftAndFingerprintMismatch) {
  const obs::Snapshot a = stride32_snapshot(1);
  obs::Snapshot b = a;
  ASSERT_FALSE(b.cells.empty());
  b.cells.front().ticks += 7;
  b.cells.front().category_ticks[0] += 7;
  const obs::SnapshotDiff drift = obs::diff_snapshots(a, b);
  EXPECT_TRUE(drift.comparable);
  EXPECT_FALSE(drift.identical);
  ASSERT_EQ(drift.changed.size(), 1u);
  EXPECT_EQ(drift.changed.front().ticks_b - drift.changed.front().ticks_a,
            7);
  EXPECT_EQ(drift.net_tick_drift, 7);

  obs::Snapshot c = a;
  c.attribution_fingerprint += 1;
  const obs::SnapshotDiff incomparable = obs::diff_snapshots(a, c);
  EXPECT_FALSE(incomparable.comparable);
  EXPECT_FALSE(incomparable.identical);
}

TEST(Snapshot, SerialAndParallelSweepsProduceIdenticalBytes) {
  const obs::Snapshot serial = stride32_snapshot(1);
  const obs::Snapshot parallel = stride32_snapshot(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(obs::serialize_snapshot(serial),
            obs::serialize_snapshot(parallel));
}

TEST(Snapshot, SaveLoadRoundTripsThroughDisk) {
  const obs::Snapshot snap = stride32_snapshot(1);
  const std::string path =
      testing::TempDir() + "/javaflow_test_snapshot.jfs";
  ASSERT_TRUE(obs::save_snapshot(snap, path));
  obs::Snapshot loaded;
  ASSERT_TRUE(obs::load_snapshot(path, loaded));
  EXPECT_EQ(loaded, snap);
  std::remove(path.c_str());
}

// ---- fingerprints ----

// record_fingerprint() is an FNV-1a 32 fold over, in order: plan
// lowering, single-method engine, multi-tenant engine, analyzer, and
// attribution versions. Recomputing the fold here pins both the
// constant set and the fold order — bumping any version constant (or
// reordering the fold) must change the stamped fingerprint.
TEST(Fingerprint, VersionConstantsAreFoldedIntoCacheRecords) {
  const auto fold = [](std::initializer_list<std::uint32_t> vs) {
    std::uint32_t h = 2166136261u;
    for (const std::uint32_t v : vs) {
      for (int i = 0; i < 4; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 16777619u;
      }
    }
    return h;
  };
  EXPECT_EQ(cache::record_fingerprint(),
            fold({sim::kPlanFingerprint, cache::kEngineFingerprint,
                  sim::kMultiEngineFingerprint, cache::kAnalysisFingerprint,
                  obs::kAttributionFingerprint}));
  // Sensitivity: a bump of any single constant moves the fingerprint.
  EXPECT_NE(cache::record_fingerprint(),
            fold({sim::kPlanFingerprint, cache::kEngineFingerprint,
                  sim::kMultiEngineFingerprint + 1,
                  cache::kAnalysisFingerprint,
                  obs::kAttributionFingerprint}));
}

}  // namespace
}  // namespace javaflow
