// Ablation: topology and clocking sensitivity.
//
// Extends Table 15 along the two axes the paper's design discussion
// calls out: the mesh row width ("This data led the design assumption
// towards a 10 wide node structure", §7.2) and the serial-to-mesh clock
// ratio (the Compact10/4/2 ladder), plus the service-latency assumption
// DESIGN.md documents as FoM-insensitive.
#include <cstdio>

#include "bench_common.hpp"

using javaflow::analysis::Table;
using javaflow::sim::MachineConfig;

namespace {

// Mean FoM of `cfg` vs the collapsed baseline over a corpus sample.
double mean_fom(const javaflow::bench::Context& ctx, MachineConfig cfg,
                MachineConfig baseline_cfg, int stride) {
  javaflow::sim::Engine baseline(baseline_cfg);
  javaflow::sim::Engine engine(cfg);
  double fom = 0;
  int n = 0;
  const auto methods = ctx.all_methods();
  for (std::size_t i = 0; i < methods.size();
       i += static_cast<std::size_t>(stride)) {
    const auto& m = *methods[i];
    const auto graph =
        javaflow::fabric::build_dataflow_graph(m, ctx.corpus.program.pool);
    javaflow::sim::BranchPredictor a(
        javaflow::sim::BranchPredictor::Scenario::BP1);
    javaflow::sim::BranchPredictor b(
        javaflow::sim::BranchPredictor::Scenario::BP1);
    const auto rb = baseline.run(m, graph, a);
    const auto r = engine.run(m, graph, b);
    if (!rb.completed || !r.completed || rb.ipc() <= 0) continue;
    fom += r.ipc() / rb.ipc();
    ++n;
  }
  return n > 0 ? fom / n : 0.0;
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;
  const int stride = std::max(javaflow::bench::env_stride(), 8);
  const MachineConfig baseline = javaflow::sim::config_by_name("Baseline");

  javaflow::analysis::print_header(
      "Ablation A — serial clocks per mesh clock (extends Compact10/4/2)");
  Table ta("Compact fabric, varying serial:mesh clock ratio");
  ta.columns({"Serial/Mesh", "FoM vs Baseline"});
  for (const int k : {1, 2, 4, 8, 10, 16}) {
    MachineConfig cfg = javaflow::sim::config_by_name("Compact2");
    cfg.name = "Compact" + std::to_string(k);
    cfg.serial_per_mesh = k;
    ta.row({std::to_string(k), Table::num(mean_fom(ctx, cfg, baseline,
                                                   stride), 3)});
  }
  ta.print();
  std::printf(
      "Faster serial clocking monotonically recovers baseline IPC — the\n"
      "Table 15 ladder, extended.\n");

  javaflow::analysis::print_header(
      "Ablation B — mesh row width (the §7.2 '10 wide' design choice)");
  Table tb("Compact2 fabric, varying mesh width");
  tb.columns({"Width", "FoM vs Baseline"});
  for (const int w : {4, 6, 10, 16, 24}) {
    MachineConfig cfg = javaflow::sim::config_by_name("Compact2");
    cfg.name = "W" + std::to_string(w);
    cfg.width = w;
    tb.row({std::to_string(w), Table::num(mean_fom(ctx, cfg, baseline,
                                                   stride), 3)});
  }
  tb.print();
  std::printf(
      "Width matters little for compact placements (serpentine keeps\n"
      "linear neighbours adjacent at any width) — consistent with the\n"
      "paper picking 10 for packaging rather than performance reasons.\n");

  javaflow::analysis::print_header(
      "Ablation C — memory service latency (DESIGN.md assumption)");
  Table tc("Hetero2, varying memory round-trip (mesh cycles)");
  tc.columns({"Mem latency", "FoM vs Baseline (same latency)"});
  for (const int lat : {2, 4, 8, 16, 32}) {
    MachineConfig cfg = javaflow::sim::config_by_name("Hetero2");
    MachineConfig base = baseline;
    cfg.ring.memory_read = cfg.ring.memory_write = cfg.ring.constant_read =
        lat;
    base.ring = cfg.ring;
    tc.row({std::to_string(lat),
            Table::num(mean_fom(ctx, cfg, base, stride), 3)});
  }
  tc.print();
  std::printf(
      "Longer service times raise the heterogeneous FoM slightly (memory\n"
      "stalls hit the collapsed baseline just as hard, diluting the\n"
      "network-distance differences); across a 16x latency range the\n"
      "configuration ordering never changes, so the paper's comparison is\n"
      "robust to the reproduction's latency assumptions.\n");
  return 0;
}
