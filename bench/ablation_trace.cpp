// Ablation: synthetic branch scenarios (BP-1/BP-2) vs real traces.
//
// The paper ran everything under synthetic 50 %/90 % branch rules because
// it had no trace data (§5.2). This reproduction owns the interpreter, so
// it can collect real control-flow traces from the workload drivers and
// replay them on the machine — quantifying how well the paper's
// methodology approximates real behaviour.
#include <cstdio>

#include "analysis/trace.hpp"
#include "fabric/dataflow_graph.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;

  // Collect traces while the drivers run.
  javaflow::jvm::Interpreter vm(ctx.corpus.program, &ctx.profiler);
  javaflow::analysis::TraceCollector collector(vm);
  for (javaflow::workloads::Benchmark& b : ctx.corpus.benchmarks) {
    b.run(vm);
  }

  javaflow::analysis::print_header(
      "Ablation — BP-1/BP-2 synthetic scenarios vs interpreter traces");

  Table t("Hetero2 kernel IPC under three branch sources");
  t.columns({"Method", "BP-1", "BP-2", "Trace", "Trace/BP-avg"});
  javaflow::sim::Engine engine(javaflow::sim::config_by_name("Hetero2"));
  double ratio_sum = 0;
  int n = 0;
  for (const auto* m : ctx.kernel_methods()) {
    if (collector.events_for(m->name) == 0) continue;  // never executed
    const auto graph =
        javaflow::fabric::build_dataflow_graph(*m, ctx.corpus.program.pool);
    javaflow::sim::BranchPredictor bp1(
        javaflow::sim::BranchPredictor::Scenario::BP1);
    javaflow::sim::BranchPredictor bp2(
        javaflow::sim::BranchPredictor::Scenario::BP2);
    auto trace = collector.predictor_for(*m);
    const auto r1 = engine.run(*m, graph, bp1);
    const auto r2 = engine.run(*m, graph, bp2);
    const auto rt = engine.run(*m, graph, trace);
    if (!r1.completed || !r2.completed || !rt.completed || r1.ipc() <= 0) {
      continue;
    }
    const double bp_avg = (r1.ipc() + r2.ipc()) / 2;
    const double ratio = rt.ipc() / bp_avg;
    ratio_sum += ratio;
    ++n;
    t.row({m->name, Table::num(r1.ipc(), 3), Table::num(r2.ipc(), 3),
           Table::num(rt.ipc(), 3), Table::num(ratio, 2)});
  }
  t.print();
  std::printf(
      "\n%d kernels; mean Trace/BP ratio %.2f. Ratios near 1 validate the\n"
      "paper's synthetic methodology: the fabric's relative performance is\n"
      "driven by instruction mix and transfer distances, not by the exact\n"
      "branch sequence.\n",
      n, ratio_sum / n);
  return 0;
}
