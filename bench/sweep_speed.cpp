// Sweep throughput harness: times the Chapter 7 method × config ×
// scenario sweep serial vs parallel, verifies the two runs produce
// identical sample sequences, and emits BENCH_sweep.json so the perf
// trajectory is tracked across PRs.
//
// Knobs (see docs/PERF.md): JAVAFLOW_BENCH_STRIDE subsamples the corpus
// for smoke runs; JAVAFLOW_THREADS sizes the parallel leg (0 = one
// worker per hardware thread); JAVAFLOW_BENCH_FILTER restricts the
// corpus to matching method names; JAVAFLOW_CACHE / JAVAFLOW_CACHE_DIR
// enable the persistent result cache (a warm cache makes both legs
// serve from disk — the JSON's cache counters say which ran).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct TimedSweep {
  javaflow::analysis::Sweep sweep;
  double seconds = 0.0;
};

TimedSweep timed_sweep(const javaflow::bench::Context& ctx, int threads) {
  javaflow::analysis::SweepOptions options;
  javaflow::bench::apply_env(options);
  options.threads = threads;
  const auto t0 = Clock::now();
  TimedSweep out;
  out.sweep = javaflow::analysis::run_sweep(
      ctx.all_methods(), ctx.corpus.program.pool, ctx.hot_method_names(),
      options);
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

double rate(std::size_t cells, double seconds) {
  return seconds > 0.0 ? static_cast<double>(cells) / seconds : 0.0;
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;
  const unsigned threads = javaflow::util::ThreadPool::resolve_clamped(
      javaflow::bench::env_threads());

  std::printf("sweep_speed: stride=%d, parallel leg uses %u thread(s)\n",
              javaflow::bench::env_stride(), threads);

  const TimedSweep serial = timed_sweep(ctx, 1);
  const TimedSweep parallel = timed_sweep(ctx, static_cast<int>(threads));

  const std::size_t cells = serial.sweep.samples.size();
  const bool identical = serial.sweep.samples == parallel.sweep.samples;
  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;

  std::printf("  cells:    %zu (%zu methods x %zu configs x 2 scenarios)\n",
              cells,
              cells / (serial.sweep.configs.size() * 2),
              serial.sweep.configs.size());
  std::printf("  serial:   %.3f s (%.1f cells/s)\n", serial.seconds,
              rate(cells, serial.seconds));
  std::printf("  parallel: %.3f s (%.1f cells/s)\n", parallel.seconds,
              rate(cells, parallel.seconds));
  std::printf("  speedup:  %.2fx on %u thread(s)\n", speedup, threads);
  std::printf("  scheduler: %s\n", serial.sweep.scheduler.c_str());
  std::printf("  cache:    %s (%zu hit / %zu miss / %zu dedup cells)\n",
              serial.sweep.cache.mode.c_str(), serial.sweep.cache.hit_cells,
              serial.sweep.cache.miss_cells, serial.sweep.cache.dedup_cells);
  std::printf("  identical output: %s\n", identical ? "yes" : "NO");

  // Run metadata so BENCH_sweep.json files are comparable across PRs:
  // which commit, when, on how many hardware threads, and with which env
  // knobs in effect.
  const char* threads_env = std::getenv("JAVAFLOW_THREADS");
  const char* stride_env = std::getenv("JAVAFLOW_BENCH_STRIDE");
  const char* scheduler_env = std::getenv("JAVAFLOW_SCHEDULER");
  const char* cache_env = std::getenv("JAVAFLOW_CACHE");
  const char* cache_dir_env = std::getenv("JAVAFLOW_CACHE_DIR");
  const char* filter_env = std::getenv("JAVAFLOW_BENCH_FILTER");
  const auto env_json = [](const char* v) {
    return v ? "\"" + std::string(v) + "\"" : std::string("null");
  };

  std::ofstream json("BENCH_sweep.json");
  json << "{\n"
       << "  \"benchmark\": \"sweep_speed\",\n"
       << "  \"metadata\": {\n"
       << "    \"git_sha\": \"" << javaflow::bench::git_sha() << "\",\n"
       << "    \"timestamp_utc\": \""
       << javaflow::bench::iso_timestamp_utc() << "\",\n"
       << "    \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "    \"env_javaflow_threads\": " << env_json(threads_env)
       << ",\n"
       << "    \"env_javaflow_bench_stride\": " << env_json(stride_env)
       << ",\n"
       << "    \"env_javaflow_scheduler\": " << env_json(scheduler_env)
       << ",\n"
       << "    \"env_javaflow_cache\": " << env_json(cache_env) << ",\n"
       << "    \"env_javaflow_cache_dir\": " << env_json(cache_dir_env)
       << ",\n"
       << "    \"env_javaflow_bench_filter\": " << env_json(filter_env)
       << "\n  },\n"
       << "  \"scheduler\": \"" << serial.sweep.scheduler << "\",\n"
       << "  \"cells\": " << cells << ",\n"
       << "  \"stride\": " << javaflow::bench::env_stride() << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_seconds\": " << serial.seconds << ",\n"
       << "  \"parallel_seconds\": " << parallel.seconds << ",\n"
       << "  \"serial_cells_per_second\": " << rate(cells, serial.seconds)
       << ",\n"
       << "  \"parallel_cells_per_second\": "
       << rate(cells, parallel.seconds) << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"report\": ";
  javaflow::analysis::write_sweep_json(json, parallel.sweep, 2);
  json << "\n}\n";
  std::printf("wrote BENCH_sweep.json\n");

  // A mismatch means the parallel sweep broke determinism: fail loudly
  // so CI smoke runs catch it.
  return identical ? 0 : 1;
}
