// Execution-plan lowering benchmark (docs/PERF.md "Execution plans"):
// isolates the engine-kernel effect of pre-lowered ExecPlans from the
// rest of the sweep. Both legs run the identical cell set — every
// stride-selected method × Table 15 config × BP1/BP2 — on warm,
// lane-style engines:
//
//   legacy: Engine::run(m, graph, placement) with plans forced Off;
//   plan:   plans lowered once per (method, config) up front (timed
//           separately as build_seconds), then Engine::run(m, plan).
//
// Every cell's RunMetrics must match bit-for-bit between the legs — a
// mismatch fails the binary, so the speedup number can never come from
// diverging simulations. Emits BENCH_plan.json next to the binary's
// working directory.
//
// Knobs: JAVAFLOW_BENCH_STRIDE / JAVAFLOW_BENCH_FILTER subset the
// corpus (same semantics as sweep_speed).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/engine.hpp"
#include "sim/plan.hpp"

namespace {

using Clock = std::chrono::steady_clock;

using javaflow::sim::BranchPredictor;

constexpr BranchPredictor::Scenario kScenarios[] = {
    BranchPredictor::Scenario::BP1, BranchPredictor::Scenario::BP2};

struct Prepared {
  const javaflow::bytecode::Method* method = nullptr;
  javaflow::fabric::DataflowGraph graph;
  std::vector<javaflow::fabric::Placement> placements;  // one per config
  std::vector<javaflow::sim::ExecPlan> plans;           // one per config
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;
  const int stride = javaflow::bench::env_stride();
  const std::string filter = javaflow::bench::env_filter();
  const std::vector<javaflow::sim::MachineConfig> configs =
      javaflow::sim::table15_configs();

  // Static structures are shared inputs, built once outside both timed
  // legs — this benchmark measures the engine kernel, not graph
  // construction or placement.
  std::vector<Prepared> prep;
  {
    int seen = 0;
    for (const javaflow::bytecode::Method& m : ctx.corpus.program.methods) {
      if (!filter.empty() && m.name.find(filter) == std::string::npos) {
        continue;
      }
      if (seen++ % stride != 0) continue;
      Prepared p;
      p.method = &m;
      p.graph =
          javaflow::fabric::build_dataflow_graph(m, ctx.corpus.program.pool);
      p.placements.reserve(configs.size());
      for (const javaflow::sim::MachineConfig& cfg : configs) {
        const javaflow::fabric::Fabric fab(cfg.fabric_options());
        p.placements.push_back(javaflow::fabric::load_method(fab, m));
      }
      prep.push_back(std::move(p));
    }
  }
  const std::size_t cells = prep.size() * configs.size() * 2;
  std::printf("plan_lowering: stride=%d, %zu methods x %zu configs x 2 "
              "scenarios = %zu cells\n",
              stride, prep.size(), configs.size(), cells);

  // Lane-style warm engines, one per config per leg, so workspace reuse
  // matches how run_sweep drives the engine.
  auto make_engines = [&](javaflow::sim::PlanMode plan_mode) {
    std::vector<javaflow::sim::Engine> engines;
    engines.reserve(configs.size());
    for (const javaflow::sim::MachineConfig& cfg : configs) {
      javaflow::sim::EngineOptions eo;
      eo.plan = plan_mode;
      engines.emplace_back(cfg, eo);
    }
    return engines;
  };

  // ---- legacy leg: per-run graph/placement walk ----
  std::vector<javaflow::sim::RunMetrics> legacy_metrics;
  legacy_metrics.reserve(cells);
  auto legacy_engines = make_engines(javaflow::sim::PlanMode::Off);
  const auto legacy_t0 = Clock::now();
  for (const Prepared& p : prep) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      for (const BranchPredictor::Scenario sc : kScenarios) {
        BranchPredictor predictor(sc);
        legacy_metrics.push_back(legacy_engines[ci].run(
            *p.method, p.graph, p.placements[ci], predictor));
      }
    }
  }
  const double legacy_s = seconds_since(legacy_t0);

  // ---- plan lowering (timed separately) ----
  javaflow::sim::ExecPlanBuilder builder;
  const auto build_t0 = Clock::now();
  for (Prepared& p : prep) {
    p.plans.reserve(configs.size());
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      p.plans.push_back(builder.build(*p.method, p.graph,
                                      &p.placements[ci], configs[ci]));
    }
  }
  const double build_s = seconds_since(build_t0);

  // ---- plan leg: pre-lowered fast path ----
  std::vector<javaflow::sim::RunMetrics> plan_metrics;
  plan_metrics.reserve(cells);
  auto plan_engines = make_engines(javaflow::sim::PlanMode::On);
  const auto plan_t0 = Clock::now();
  for (const Prepared& p : prep) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      for (const BranchPredictor::Scenario sc : kScenarios) {
        BranchPredictor predictor(sc);
        plan_metrics.push_back(
            plan_engines[ci].run(*p.method, p.plans[ci], predictor));
      }
    }
  }
  const double plan_s = seconds_since(plan_t0);

  const bool identical = legacy_metrics == plan_metrics;
  const double legacy_rate =
      legacy_s > 0.0 ? static_cast<double>(cells) / legacy_s : 0.0;
  const double plan_rate =
      plan_s > 0.0 ? static_cast<double>(cells) / plan_s : 0.0;
  const double speedup = plan_s > 0.0 ? legacy_s / plan_s : 0.0;

  std::printf("  legacy: %.3f s (%.1f cells/s)\n", legacy_s, legacy_rate);
  std::printf("  plan:   %.3f s (%.1f cells/s), lowering %.3f s\n", plan_s,
              plan_rate, build_s);
  std::printf("  speedup: %.2fx (plan build excluded; %.2fx amortized)\n",
              speedup,
              plan_s + build_s > 0.0 ? legacy_s / (plan_s + build_s) : 0.0);
  std::printf("  identical RunMetrics: %s\n", identical ? "yes" : "NO");

  std::ofstream json("BENCH_plan.json");
  json << "{\n"
       << "  \"benchmark\": \"plan_lowering\",\n"
       << "  \"metadata\": {\n"
       << "    \"git_sha\": \"" << javaflow::bench::git_sha() << "\",\n"
       << "    \"timestamp_utc\": \""
       << javaflow::bench::iso_timestamp_utc() << "\"\n"
       << "  },\n"
       << "  \"stride\": " << stride << ",\n"
       << "  \"cells\": " << cells << ",\n"
       << "  \"legacy_seconds\": " << legacy_s << ",\n"
       << "  \"plan_seconds\": " << plan_s << ",\n"
       << "  \"plan_build_seconds\": " << build_s << ",\n"
       << "  \"legacy_cells_per_second\": " << legacy_rate << ",\n"
       << "  \"plan_cells_per_second\": " << plan_rate << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote BENCH_plan.json\n");

  // Diverging metrics would make the speedup meaningless — fail loudly.
  return identical ? 0 : 1;
}
