// Reproduces the headline performance tables:
//   Table 21 — raw IPC data, all methods
//   Table 22 — Figure of Merit, all methods
//   Table 23 — correlations with the Hetero2 FoM
//   Table 24 — Filter 1 data
//   Table 25 — Filter 2 data
//
// Paper Figure-of-Merit column (Table 22): 1.00 / 0.96 / 0.88 / 0.75 /
// 0.58 / 0.47, with the dissertation's abstract summarizing the
// heterogeneous result as "40% of the baseline".
#include <cstdio>

#include "bench_common.hpp"

using javaflow::analysis::Filter;
using javaflow::analysis::Table;

namespace {

void fom_table(const javaflow::analysis::Sweep& sweep, Filter filter,
               const std::string& title, const std::string& note) {
  javaflow::analysis::print_header(title);
  javaflow::bench::paper_note(note);
  Table t(title);
  t.columns({"Case", "IPC-Mean", "IPC-Median", "FM", "FM StdDev", "n"});
  for (const auto& row : javaflow::analysis::fom_rows(sweep, filter)) {
    t.row({row.config, Table::num(row.ipc_mean), Table::num(row.ipc_median),
           Table::num(row.fm_mean), Table::num(row.fm_std),
           std::to_string(row.samples)});
  }
  t.print();
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;
  const auto sweep = ctx.run_sweep();

  javaflow::analysis::print_header("Table 21 — Raw IPC Data, All Methods");
  javaflow::bench::paper_note(
      "Baseline mean 0.61 / median 0.50 ... Hetero2 mean 0.23 / median "
      "0.21");
  Table t21("Raw IPC");
  t21.columns({"Case", "Mean", "StdDev", "Median", "Max", "Min"});
  for (const auto& row : javaflow::analysis::ipc_rows(sweep, Filter::All)) {
    t21.row({row.config, Table::num(row.ipc.mean),
             Table::num(row.ipc.std_dev), Table::num(row.ipc.median),
             Table::num(row.ipc.max), Table::num(row.ipc.min)});
  }
  t21.print();

  fom_table(sweep, Filter::All, "Table 22 — Figure of Merit, All Methods",
            "FM: 1.00 / 0.96 / 0.88 / 0.75 / 0.58 / 0.47");

  javaflow::analysis::print_header(
      "Table 23 — Correlations with FM Hetero2, Filter All");
  javaflow::bench::paper_note(
      "Total I -0.25, Executed I -0.21, Max Node -0.27, Back Jumps -0.10 "
      "(all weak).");
  Table t23("Correlations");
  t23.columns({"Factor", "Correlation"});
  for (const auto& row :
       javaflow::analysis::hetero_fom_correlations(sweep)) {
    t23.row({row.factor, Table::num(row.correlation, 2)});
  }
  t23.print();

  fom_table(sweep, Filter::Filter1,
            "Table 24 — All Data, Filter 1 (10 < insts < 1000)",
            "FM: 1.00 / 0.86 / 0.77 / 0.66 / 0.50 / 0.44");
  fom_table(sweep, Filter::Filter2,
            "Table 25 — All Data, Filter 2 (top 90% methods in band)",
            "FM: 1.00 / 0.82 / 0.74 / 0.63 / 0.49 / 0.43");
  return 0;
}
