// Reproduces Table 18 (execution coverage under BP-1/BP-2), Table 19
// (ratio of instructions to max node per configuration) and Table 20
// (heterogeneous addressing detail).
//
// Paper: coverage 83 % / 80 %; ratios 1.0/1.0/1.0/1.0/2.0/3.11; hetero
// detail mean 3.11, median 3.09, max 6.53, min 1.35.
#include <cstdio>

#include "bench_common.hpp"

using javaflow::analysis::Filter;
using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;
  const auto sweep = ctx.run_sweep();

  javaflow::analysis::print_header(
      "Table 18 — Execution Coverage, All Methods");
  javaflow::bench::paper_note("BP-1: 83%, BP-2: 80%");
  Table t18("Inst Exe / Inst Static");
  t18.columns({"Scenario", "Mean coverage"});
  for (const auto& row : javaflow::analysis::coverage_rows(sweep)) {
    t18.row({row.scenario, Table::pct(row.mean_coverage)});
  }
  t18.print();

  javaflow::analysis::print_header(
      "Table 19 — Ratio of Instructions to Max Node");
  javaflow::bench::paper_note(
      "Baseline/Compact*: 1.0; Sparse2: 2.0; Hetero2: 3.11");
  Table t19("Nodes per instruction, by configuration");
  t19.columns({"Case", "Inst/MaxNode (mean)"});
  const auto ratios =
      javaflow::analysis::node_ratio_rows(sweep, Filter::All);
  for (const auto& row : ratios) {
    t19.row({row.config, Table::num(row.ratio.mean, 2)});
  }
  t19.print();

  javaflow::analysis::print_header(
      "Table 20 — Heterogeneous Addressing Detail (Filter 1)");
  javaflow::bench::paper_note(
      "average 3.11, median 3.09, std 1.81, max 6.53, min 1.35");
  const auto f1 = javaflow::analysis::node_ratio_rows(sweep, Filter::Filter1);
  const auto& hetero = f1.back().ratio;  // Hetero2 is the last config
  Table t20("Hetero2 Inst/MaxNode");
  t20.columns({"Average", "Median", "Std Dev", "Max", "Min"});
  t20.row({Table::num(hetero.mean), Table::num(hetero.median),
           Table::num(hetero.std_dev), Table::num(hetero.max),
           Table::num(hetero.min)});
  t20.print();
  return 0;
}
