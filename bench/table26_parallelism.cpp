// Reproduces Table 26 — parallelism: the average percentage of mesh
// cycles with two or more Instruction Nodes executing simultaneously.
//
// Paper: 40% / 37% / 33% / 24% / 13% / 12% down the configuration list.
#include <cstdio>

#include "bench_common.hpp"

using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;
  const auto sweep = ctx.run_sweep();

  javaflow::analysis::print_header("Table 26 — Parallelism, All Methods");
  javaflow::bench::paper_note(
      "Baseline 40%, Compact10 37%, Compact4 33%, Compact2 24%, "
      "Sparse2 13%, Hetero2 12%");
  Table t26("Avg % cycles with >= 2 instructions executing");
  t26.columns({"Case", "Parallel fraction"});
  for (const auto& row : javaflow::analysis::parallelism_rows(sweep)) {
    t26.row({row.config, Table::pct(row.mean_fraction_2plus)});
  }
  t26.print();

  // Companion detail the paper never tabulated: the network traffic
  // behind the parallelism numbers (RunMetrics mesh/serial message
  // counts, aggregated per configuration over usable samples).
  Table net("Network traffic per configuration (mean per method)");
  net.columns({"Case", "Samples", "Mesh msgs", "Serial msgs",
               "Ticks exec >=1", "Ticks exec >=2"});
  for (const auto& row : javaflow::analysis::network_rows(sweep)) {
    net.row({row.config, std::to_string(row.samples),
             Table::num(row.mean_mesh_messages, 1),
             Table::num(row.mean_serial_messages, 1),
             Table::num(row.mean_ticks_exec_1plus, 1),
             Table::num(row.mean_ticks_exec_2plus, 1)});
  }
  net.print();
  return 0;
}
