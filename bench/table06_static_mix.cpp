// Reproduces Table 6 (static mix analysis): the per-benchmark static
// instruction mix that justifies the heterogeneous fabric's 6/1/2/1 node
// ratio (Figure 26).
//
// Paper conclusion row: 60 % arith, 10 % float, 10 % control, 20 %
// storage.
#include <cstdio>

#include "analysis/mix.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;

  javaflow::analysis::print_header(
      "Table 6 — Static Mix Analysis, kernel (hot) methods");
  javaflow::bench::paper_note(
      "conclusion row: ~60% arith / 10% float / 10% control / 20% storage");
  Table hot("Static mix — hand-written kernels (the paper's 90% methods)");
  hot.columns({"Benchmark", "%Arith", "%Float", "%Control", "%Storage",
               "Total"});
  for (const auto& row :
       javaflow::analysis::static_mix(ctx.kernel_methods())) {
    hot.row({row.benchmark, Table::pct(row.arith), Table::pct(row.fp),
             Table::pct(row.control), Table::pct(row.storage),
             Table::big(row.total_insts)});
  }
  hot.print();

  javaflow::analysis::print_header(
      "Table 6 (extended) — Static mix of the full 1605-method corpus");
  Table all("Static mix — full corpus (kernels + generated tail)");
  all.columns({"Benchmark", "%Arith", "%Float", "%Control", "%Storage",
               "Total"});
  for (const auto& row : javaflow::analysis::static_mix(ctx.all_methods())) {
    if (row.benchmark != "Total") continue;
    all.row({row.benchmark, Table::pct(row.arith), Table::pct(row.fp),
             Table::pct(row.control), Table::pct(row.storage),
             Table::big(row.total_insts)});
  }
  all.print();
  return 0;
}
