// Ablation: Instruction Data Units per Instruction Node (§4.2).
//
// The paper: "each node is expected to house n instructions. A simple and
// reasonable value ... is 64 ... If the number of instructions housed in
// each element were reduced to 1, then there would be more opportunity
// for single thread parallelism but with potentially longer mesh network
// transit times" — and its own simulations used 1 per node "to stress the
// DataFlow Fabric". This harness quantifies that trade-off: packing more
// IDUs per node shrinks every network span but serializes firing within
// the shared Instruction Execution Unit.
#include <cstdio>

#include "bench_common.hpp"

using javaflow::analysis::Table;
using javaflow::sim::MachineConfig;

int main() {
  javaflow::bench::Context ctx;
  const int stride = std::max(javaflow::bench::env_stride(), 8);
  const auto methods = ctx.all_methods();

  javaflow::analysis::print_header(
      "Ablation — Instruction Data Units per node (§4.2)");

  for (const char* base : {"Compact2", "Hetero2"}) {
    Table t(std::string(base) + ": IDUs per node");
    t.columns({"IDUs/node", "IPC (mean)", "Parallel 2+", "Nodes used"});
    for (const int idus : {1, 2, 4, 8, 16, 64}) {
      MachineConfig cfg = javaflow::sim::config_by_name(base);
      cfg.idus_per_node = idus;
      javaflow::sim::Engine engine(cfg);
      double ipc = 0, par = 0;
      std::int64_t nodes = 0;
      int n = 0;
      for (std::size_t i = 0; i < methods.size();
           i += static_cast<std::size_t>(stride)) {
        const auto& m = *methods[i];
        const auto graph = javaflow::fabric::build_dataflow_graph(
            m, ctx.corpus.program.pool);
        javaflow::sim::BranchPredictor bp(
            javaflow::sim::BranchPredictor::Scenario::BP1);
        const auto r = engine.run(m, graph, bp);
        if (!r.completed) continue;
        ipc += r.ipc();
        par += r.parallel_2plus();
        nodes += r.max_slot / idus + 1;
        ++n;
      }
      t.row({std::to_string(idus), Table::num(ipc / n, 3),
             Table::pct(par / n), Table::big(static_cast<std::uint64_t>(
                                       nodes / n))});
    }
    t.print();
  }
  std::printf(
      "\nThe §4.2 trade-off, quantified: a few IDUs per node trade a\n"
      "little parallelism for a large node-count saving (shorter spans\n"
      "partially compensate); at 64 IDUs execution is nearly serial —\n"
      "the 'modern multi-core-like' extreme the paper warns about.\n");
  return 0;
}
