// Reproduces Table 2 (dynamic instruction mix of the 90 % methods) and
// Table 5 (impact of _Quick instructions).
//
// Paper shape: Locals+Stack is 26-54 % of executed instructions (the
// folding opportunity §6.4 targets); 97-99 % of storage executions use
// the resolved _Quick forms.
#include <cstdio>

#include "analysis/mix.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Table;
using javaflow::bytecode::DynamicMixCategory;

int main() {
  javaflow::bench::Context ctx;
  ctx.run_drivers();

  javaflow::analysis::print_header(
      "Table 2 — Dynamic Instruction Mix of 90% Methods (reproduction)");
  javaflow::bench::paper_note(
      "Locals+Stack 26-54%; arithmetic split fixed vs float per "
      "benchmark; Object+Special is small everywhere.");
  Table t2("Dynamic mix (fractions of executed ops)");
  t2.columns({"Benchmark", "Arith-Fix", "Arith-Flt", "Locals+Stack",
              "Const-Stg", "Arr+Fld-Stg", "Control", "Calls+Rets",
              "Obj+Spec"});
  double locals_min = 1.0, locals_max = 0.0;
  for (const auto& row :
       javaflow::analysis::dynamic_mix_of_hot_methods(ctx.profiler)) {
    const auto f = [&](DynamicMixCategory c) {
      return Table::pct(row.fractions[static_cast<int>(c)]);
    };
    const double locals =
        row.fractions[static_cast<int>(DynamicMixCategory::LocalsStack)];
    locals_min = std::min(locals_min, locals);
    locals_max = std::max(locals_max, locals);
    t2.row({row.benchmark, f(DynamicMixCategory::ArithFixed),
            f(DynamicMixCategory::ArithFloat),
            f(DynamicMixCategory::LocalsStack),
            f(DynamicMixCategory::ConstantsStg),
            f(DynamicMixCategory::FieldsArrayStg),
            f(DynamicMixCategory::Control),
            f(DynamicMixCategory::CallsRets),
            f(DynamicMixCategory::ObjectSpecial)});
  }
  t2.print();
  std::printf("\nmeasured Locals+Stack range: %s .. %s (paper: 26%%-54%%)\n",
              Table::pct(locals_min).c_str(), Table::pct(locals_max).c_str());

  javaflow::analysis::print_header(
      "Table 5 — Impact of Quick Instructions (reproduction)");
  javaflow::bench::paper_note(
      "SpecJvm2008: 97% quick; SpecJvm98: 99% quick.");
  const auto q = javaflow::analysis::quick_impact(ctx.profiler);
  Table t5("Storage instruction resolution");
  t5.columns({"Total Ops", "Storage Base", "Storage Quick", "Quick %"});
  t5.row({Table::big(q.total_ops), Table::big(q.storage_base),
          Table::big(q.storage_quick), Table::pct(q.quick_percentage)});
  t5.print();
  return 0;
}
