// Shared context for the table-reproduction harnesses.
//
// Environment knobs:
//   JAVAFLOW_BENCH_STRIDE=<k>  subsample the corpus (keep every k-th
//                              method) for quick runs; default 1 (all).
//   JAVAFLOW_THREADS=<n>       sweep worker threads: 0 = one per
//                              hardware thread (default), 1 = serial,
//                              n >= 2 = exactly n. Output is identical
//                              for every setting (see docs/PERF.md).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "analysis/report.hpp"
#include "jvm/interpreter.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::bench {

inline int env_stride() {
  if (const char* s = std::getenv("JAVAFLOW_BENCH_STRIDE")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  return 1;
}

inline int env_threads() {
  if (const char* s = std::getenv("JAVAFLOW_THREADS")) {
    const int v = std::atoi(s);
    if (v >= 0) return v;
  }
  return 0;  // auto: one worker per hardware thread
}

struct Context {
  workloads::Corpus corpus;
  jvm::Profiler profiler;  // filled by run_drivers()

  Context() : corpus(workloads::make_corpus({})) {}

  // Runs every benchmark driver under the reference interpreter,
  // populating the dynamic-mix profiler (the paper's §5.2 methodology).
  void run_drivers() {
    jvm::Interpreter vm(corpus.program, &profiler);
    for (workloads::Benchmark& b : corpus.benchmarks) {
      b.run(vm);
    }
  }

  std::vector<const bytecode::Method*> all_methods() const {
    std::vector<const bytecode::Method*> out;
    out.reserve(corpus.program.methods.size());
    for (const bytecode::Method& m : corpus.program.methods) {
      out.push_back(&m);
    }
    return out;
  }

  std::vector<const bytecode::Method*> kernel_methods() const {
    std::vector<const bytecode::Method*> out;
    for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
      out.push_back(&corpus.program.methods[i]);
    }
    return out;
  }

  // Filter 2's hot set: the kernels the drivers actually execute are the
  // dynamically weighted top of this corpus (generated methods never run
  // under the interpreter — documented in DESIGN.md).
  std::vector<std::string> hot_method_names() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
      out.push_back(corpus.program.methods[i].name);
    }
    return out;
  }

  analysis::Sweep run_sweep() const {
    analysis::SweepOptions options;
    options.stride = env_stride();
    options.threads = env_threads();
    return analysis::run_sweep(all_methods(), corpus.program.pool,
                               hot_method_names(), options);
  }
};

inline void paper_note(const std::string& text) {
  std::printf("paper: %s\n", text.c_str());
}

}  // namespace javaflow::bench
