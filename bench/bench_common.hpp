// Shared context for the table-reproduction harnesses.
//
// Environment knobs (all parsed strictly — a malformed value warns on
// stderr and falls back to the default, see src/util/env.hpp):
//   JAVAFLOW_BENCH_STRIDE=<k>      subsample the corpus (keep every k-th
//                                  method) for quick runs; default 1.
//   JAVAFLOW_THREADS=<n>           sweep worker threads: 0 = one per
//                                  hardware thread (default), 1 = serial,
//                                  n >= 2 = exactly n, clamped to the
//                                  hardware-thread count with a stderr
//                                  warning. Output is identical for every
//                                  setting (see docs/PERF.md).
//   JAVAFLOW_SCHEDULER=<kind>      engine event scheduler: "calendar"
//                                  (default) or "heap"; both produce
//                                  bit-identical results (docs/PERF.md
//                                  "Engine kernel").
//   JAVAFLOW_SWEEP_HEARTBEAT=1     opt-in stderr progress heartbeat
//                                  (methods/s + ETA, plus cache hit/miss/
//                                  dedup cells when the cache is on).
//   JAVAFLOW_BENCH_FILTER=<substr> sweep only methods whose qualified
//                                  name contains <substr> (fast local
//                                  iteration on one method); default all.
//   JAVAFLOW_CACHE=<mode>          persistent result cache: off (default),
//                                  read, readwrite, or verify
//                                  (docs/PERF.md "Result cache").
//   JAVAFLOW_CACHE_DIR=<dir>       cache directory; default
//                                  $XDG_CACHE_HOME/javaflow or
//                                  ~/.cache/javaflow.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "analysis/report.hpp"
#include "jvm/interpreter.hpp"
#include "util/env.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::bench {

inline int env_stride() {
  return static_cast<int>(util::env_int("JAVAFLOW_BENCH_STRIDE", 1, 1));
}

inline int env_threads() {
  // 0 = auto: one worker per hardware thread.
  return static_cast<int>(util::env_int("JAVAFLOW_THREADS", 0, 0));
}

inline bool env_heartbeat() {
  return util::env_flag("JAVAFLOW_SWEEP_HEARTBEAT");
}

inline std::string env_filter() {
  return std::string(util::env_string("JAVAFLOW_BENCH_FILTER", ""));
}

// Applies every sweep-shaping env knob to `options` in one place so all
// table/ablation binaries inherit new knobs for free. The result cache
// itself needs no wiring here: SweepOptions::cache defaults to Auto,
// which run_sweep resolves via JAVAFLOW_CACHE / JAVAFLOW_CACHE_DIR.
inline void apply_env(analysis::SweepOptions& options) {
  options.stride = env_stride();
  options.threads = env_threads();
  options.heartbeat = env_heartbeat();
  options.method_filter = env_filter();
}

// ---- run metadata (BENCH_*.json provenance) ----

// Current UTC time as ISO 8601 ("2026-08-06T12:34:56Z").
inline std::string iso_timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

// HEAD commit of the repository the benchmark runs from ("unknown" when
// git or the repo is unavailable — e.g. a distributed binary).
inline std::string git_sha() {
  FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  const std::size_t n = fread(buf, 1, sizeof(buf) - 1, pipe);
  pclose(pipe);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.size() == 40 ? sha : "unknown";
}

struct Context {
  workloads::Corpus corpus;
  jvm::Profiler profiler;  // filled by run_drivers()

  Context() : corpus(workloads::make_corpus({})) {}

  // Runs every benchmark driver under the reference interpreter,
  // populating the dynamic-mix profiler (the paper's §5.2 methodology).
  void run_drivers() {
    jvm::Interpreter vm(corpus.program, &profiler);
    for (workloads::Benchmark& b : corpus.benchmarks) {
      b.run(vm);
    }
  }

  std::vector<const bytecode::Method*> all_methods() const {
    std::vector<const bytecode::Method*> out;
    out.reserve(corpus.program.methods.size());
    for (const bytecode::Method& m : corpus.program.methods) {
      out.push_back(&m);
    }
    return out;
  }

  std::vector<const bytecode::Method*> kernel_methods() const {
    std::vector<const bytecode::Method*> out;
    for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
      out.push_back(&corpus.program.methods[i]);
    }
    return out;
  }

  // Filter 2's hot set: the kernels the drivers actually execute are the
  // dynamically weighted top of this corpus (generated methods never run
  // under the interpreter — documented in DESIGN.md).
  std::vector<std::string> hot_method_names() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
      out.push_back(corpus.program.methods[i].name);
    }
    return out;
  }

  analysis::Sweep run_sweep() const {
    analysis::SweepOptions options;
    apply_env(options);
    return analysis::run_sweep(all_methods(), corpus.program.pool,
                               hot_method_names(), options);
  }
};

inline void paper_note(const std::string& text) {
  std::printf("paper: %s\n", text.c_str());
}

}  // namespace javaflow::bench
