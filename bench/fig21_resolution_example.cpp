// Reproduces Figures 21-22: the address-resolution walkthroughs.
//
// Figure 21: the simple three-load / two-add / store method, showing how
// CMD_SEND_NEEDS_UP links pops to the nearest open pushes.
// Figure 22: a merge example where two arms push to side 1 of the same
// consumer and a shared producer feeds side 2.
#include <cstdio>

#include "analysis/report.hpp"
#include "bytecode/assembler.hpp"
#include "bytecode/printer.hpp"
#include "fabric/loader.hpp"
#include "fabric/resolver.hpp"

using namespace javaflow;
using analysis::Table;
using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

namespace {

void show(const bytecode::Method& m, const bytecode::ConstantPool& pool,
          const char* what) {
  analysis::print_header(what);
  std::printf("%s\n", bytecode::disassemble(m, pool).c_str());

  fabric::FabricOptions opt;
  opt.layout = fabric::LayoutKind::Compact;
  fabric::Fabric f(opt);
  const fabric::Placement pl = fabric::load_method(f, m);
  const fabric::ResolutionResult r = fabric::resolve(f, m, pl, pool);

  // Figure 22-style listing: each instruction with its resolved consumer
  // targets ">> A4, m,s" plus pop/push and group.
  Table t("Resolved DataFlow addresses");
  t.columns({"A1", "Instr", "pop", "push", "targets (>>A4, side, merge)"});
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    std::string targets;
    for (const fabric::Edge& e :
         r.graph.consumers_of[i]) {
      if (!targets.empty()) targets += "  ";
      targets += ">>" + std::to_string(e.consumer) + ",s" +
                 std::to_string(e.side) + (e.merge ? ",M" : "");
    }
    t.row({std::to_string(i), std::string(bytecode::op_name(m.code[i].op)),
           std::to_string(m.code[i].pop), std::to_string(m.code[i].push),
           targets});
  }
  t.print();
  std::printf(
      "\nresolution: phaseA=%lld cycles, phaseB=%lld cycles, total=%lld "
      "(insts=%zu => %.2fx), maxQup=%d, merges=%d, back merges=%d\n",
      static_cast<long long>(r.phase_a_cycles),
      static_cast<long long>(r.phase_b_cycles),
      static_cast<long long>(r.total_cycles), m.code.size(),
      static_cast<double>(r.total_cycles) /
          static_cast<double>(m.code.size()),
      r.max_queue_up, r.merges, r.back_merges);
}

}  // namespace

int main() {
  Program p;
  {
    // Figure 21's example method: add three register values into r3.
    Assembler a(p, "fig21.simple(III)V", "figures");
    a.args({ValueType::Int, ValueType::Int, ValueType::Int})
        .returns(ValueType::Void);
    a.iload(0).iload(1).op(Op::iadd);
    a.iload(2).op(Op::iadd);
    a.istore(3);
    a.op(Op::return_);
    const auto m = a.build();
    show(m, p.pool,
         "Figure 21 — Simple Address Resolution Example");
  }
  {
    // Figure 22's situation: a DataFlow merge with a shared side-2
    // producer above the split.
    Assembler a(p, "fig22.merge(I)I", "figures");
    a.args({ValueType::Int}).returns(ValueType::Int);
    auto els = a.new_label(), join = a.new_label();
    a.iconst(100);           // shared producer (side 2 of the add)
    a.iload(0).ifle(els);    // split
    a.iconst(10);            // arm A pushes side 1
    a.goto_(join);
    a.bind(els);
    a.iconst(20);            // arm B pushes side 1
    a.bind(join);
    a.op(Op::iadd);          // the DataFlow merge consumer
    a.op(Op::ireturn);
    const auto m = a.build();
    show(m, p.pool, "Figure 22 — DataFlow Address Resolution (merge)");
  }
  return 0;
}
