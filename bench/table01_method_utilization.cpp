// Reproduces Table 1 (method utilization in SPEC benchmarks) and
// Tables 3-4 (top-4 methods per benchmark).
//
// Paper shape to reproduce: a small number of methods dominates each
// benchmark's dynamic ByteCode count; the scientific benchmarks are
// dominated by 1-2 methods; in several benchmarks the top 4 methods
// cover > 80 % of all executed operations.
#include <cstdio>

#include "analysis/mix.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;
  ctx.run_drivers();

  javaflow::analysis::print_header(
      "Table 1 — Method Utilization in SPEC Benchmarks (reproduction)");
  javaflow::bench::paper_note(
      "e.g. scimark.lu.large: 1-2 methods cover 90% of 9.3e10 ops; "
      "compress: 18 of its methods cover 90%.");
  Table t1("Method utilization");
  t1.columns({"Benchmark", "Total Ops", "Methods", "Methods@90%"});
  for (const auto& row :
       javaflow::analysis::method_utilization(ctx.profiler)) {
    t1.row({row.benchmark, Table::big(row.total_ops),
            std::to_string(row.methods_used),
            std::to_string(row.methods_for_90pct)});
  }
  t1.print();

  javaflow::analysis::print_header(
      "Tables 3-4 — Top 4 methods per benchmark (reproduction)");
  javaflow::bench::paper_note(
      "paper: 7 of 14 benchmarks have top-4 > 80%; lu/sor/sparse have a "
      "single ~99% method.");
  for (const auto& row : javaflow::analysis::top_methods(ctx.profiler, 4)) {
    Table t("Top 4 — " + row.benchmark + "  (top-4 share " +
            Table::pct(row.top_share) + ")");
    t.columns({"Method", "Ops", "Share"});
    for (const auto& m : row.top) {
      t.row({m.method, Table::big(m.ops), Table::pct(m.share)});
    }
    t.print();
  }
  return 0;
}
