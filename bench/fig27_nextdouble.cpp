// Reproduces Appendix C (Figures 27-31): the end-to-end sample analysis
// of scimark.utils.Random.nextDouble() — ByteCode listing (Fig. 28),
// DataFlow code with resolved addresses (Fig. 29), DataFlow analysis
// (Fig. 30), and simulation results across all configurations (Fig. 31).
#include <cstdio>

#include "analysis/report.hpp"
#include "bytecode/printer.hpp"
#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;
using analysis::Table;

int main() {
  workloads::CorpusOptions copt;
  copt.total_methods = 0;  // kernels only
  workloads::Corpus corpus = workloads::make_corpus(copt);
  const bytecode::Method* m =
      corpus.program.find("scimark.utils.Random.nextDouble()D");
  if (m == nullptr) {
    std::fprintf(stderr, "nextDouble kernel missing\n");
    return 1;
  }

  analysis::print_header(
      "Figure 28 — Method code from JAVAP: nextDouble()");
  std::printf("%s\n",
              bytecode::disassemble(*m, corpus.program.pool).c_str());

  analysis::print_header("Figure 29 — DataFlow code: nextDouble()");
  JavaFlowMachine compact(sim::config_by_name("Compact2"));
  const DeployedMethod d = compact.deploy(*m, corpus.program.pool);
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed\n");
    return 1;
  }
  Table df("Producer -> consumer links");
  df.columns({"Producer", "Consumer", "Side", "Merge", "Arc"});
  for (const fabric::Edge& e : d.resolution.graph.edges) {
    df.row({std::to_string(e.producer), std::to_string(e.consumer),
            std::to_string(e.side), e.merge ? "M" : "",
            std::to_string(e.consumer - e.producer)});
  }
  df.print();

  analysis::print_header("Figure 30 — DataFlow analysis: nextDouble()");
  std::printf(
      "static insts: %zu\nDFlows: %d\nmerges: %d\nback merges: %d\n"
      "forward jumps: %d (avg len %.1f)\nback jumps: %d\n"
      "fanout avg/max: %.2f / %d\narc avg/max: %.2f / %d\n"
      "resolution cycles: %lld (%.2fx insts)\nmax needs-up queue: %d\n",
      m->code.size(), d.resolution.total_dflows, d.resolution.merges,
      d.resolution.back_merges, d.resolution.forward_jumps.count,
      d.resolution.forward_jumps.avg_length, d.resolution.back_jumps.count,
      d.resolution.fanout_avg, d.resolution.fanout_max,
      d.resolution.arc_avg, d.resolution.arc_max,
      static_cast<long long>(d.resolution.total_cycles),
      static_cast<double>(d.resolution.total_cycles) /
          static_cast<double>(m->code.size()),
      d.resolution.max_queue_up);

  analysis::print_header("Figure 31 — Simulation results: nextDouble()");
  std::printf(
      "paper: fm per configuration 100%% / 83%% / 78%% / 71%% / 56%% / "
      "47%% (Tables 27-28 row)\n");
  Table sim_table("nextDouble() across Table 15 configurations");
  sim_table.columns({"Case", "MeshCycles", "Fired", "IPC", "FoM",
                     "Coverage", "MaxNode"});
  double base_ipc = 0.0;
  for (const auto& cfg : sim::table15_configs()) {
    JavaFlowMachine machine(cfg);
    const DeployedMethod dep = machine.deploy(*m, corpus.program.pool);
    const sim::RunMetrics r =
        machine.execute(dep, sim::BranchPredictor::Scenario::BP1);
    if (cfg.name == "Baseline") base_ipc = r.ipc();
    sim_table.row(
        {cfg.name, std::to_string(r.mesh_cycles),
         std::to_string(r.instructions_fired), Table::num(r.ipc(), 3),
         base_ipc > 0 ? Table::pct(r.ipc() / base_ipc) : "-",
         Table::pct(r.coverage()), std::to_string(r.max_slot)});
  }
  sim_table.print();
  return 0;
}
