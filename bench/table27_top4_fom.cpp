// Reproduces Tables 27-28 — Figure of Merit of the top-4 SPEC benchmark
// methods across all configurations, with the "Total I" and "Sparser N"
// (heterogeneous node span) columns.
//
// Paper: the SpecJvm2008 list sums 4276 insts spanning 9640 hetero nodes
// with mean FoMs 100% / 72% / 62% / 52% / 38% / 35%; SpecJvm98 similar.
#include <cstdio>

#include "bench_common.hpp"

using javaflow::analysis::Table;

namespace {

void fom_by_suite(const javaflow::bench::Context& ctx,
                  const javaflow::analysis::Sweep& sweep,
                  const std::string& suite, const std::string& header,
                  const std::string& note) {
  javaflow::analysis::print_header(header);
  javaflow::bench::paper_note(note);

  // The hot methods the drivers actually executed, restricted to `suite`.
  std::vector<std::string> methods;
  for (const auto& bm : ctx.corpus.benchmarks) {
    if (bm.suite != suite) continue;
    for (const std::string& m : bm.methods) {
      if (std::find(methods.begin(), methods.end(), m) == methods.end()) {
        methods.push_back(m);
      }
    }
  }
  Table t(header);
  t.columns({"Method", "Total I", "Sparser N", "fm0", "fm1", "fm2", "fm3",
             "fm4", "fm5"});
  std::vector<double> sums(sweep.configs.size(), 0.0);
  int rows = 0;
  std::int64_t insts = 0, nodes = 0;
  for (const auto& row :
       javaflow::analysis::per_method_fom(sweep, methods)) {
    if (row.total_insts == 0) continue;  // not in the sweep sample
    std::vector<std::string> cells = {row.method,
                                      std::to_string(row.total_insts),
                                      std::to_string(row.hetero_nodes)};
    for (std::size_t ci = 0; ci < row.fm.size(); ++ci) {
      cells.push_back(Table::pct(row.fm[ci]));
      sums[ci] += row.fm[ci];
    }
    insts += row.total_insts;
    nodes += row.hetero_nodes;
    ++rows;
    t.row(std::move(cells));
  }
  if (rows > 0) {
    std::vector<std::string> mean_row = {"Sum/Mean", Table::big(insts),
                                         Table::big(nodes)};
    for (const double s : sums) {
      mean_row.push_back(Table::pct(s / rows));
    }
    t.row(std::move(mean_row));
  }
  t.print();
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;
  // Tables 27-28 need every kernel method, so sweep the kernels directly
  // (no stride subsampling).
  javaflow::analysis::SweepOptions options;
  const auto sweep = javaflow::analysis::run_sweep(
      ctx.kernel_methods(), ctx.corpus.program.pool,
      ctx.hot_method_names(), options);
  fom_by_suite(ctx, sweep, "SpecJvm2008",
               "Table 27 — Figure of Merit on Top 4 SpecJvm2008 methods",
               "Sum 4276 insts / 9640 hetero nodes; mean FoM 72/62/52/38/35%");
  fom_by_suite(ctx, sweep, "SpecJvm98",
               "Table 28 — Figure of Merit on Top 4 SpecJvm98 methods",
               "Sum 2866 insts / 8368 hetero nodes; mean FoM 82/72/58/43/37%");
  return 0;
}
