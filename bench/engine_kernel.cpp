// Engine-kernel microbenchmark: event-queue push/pop plus fire-drain
// throughput of the two schedulers (docs/PERF.md "Engine kernel"),
// isolated from the rest of the sweep (graph building, placement,
// aggregation). Emits BENCH_kernel.json so a scheduler regression is
// visible without re-running the whole sweep harness.
//
// Two cases, chosen to stress opposite ends of the kernel:
//   queue_stress — Compact2: non-zero serial hops and real mesh
//                  distances spread events across many ticks, so the
//                  run is dominated by queue ordering work.
//   fire_drain   — Baseline (collapsed): zero-delay serial forwards and
//                  distance-1 mesh pile events onto dense shared ticks,
//                  so the run is dominated by same-tick batch draining.
//
// Both cases run every corpus kernel method under both schedulers and
// assert the RunMetrics are identical before reporting throughput.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fabric/dataflow_graph.hpp"
#include "sim/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Case {
  const char* name;
  const char* config;  // Table 15 configuration name
};

struct Measurement {
  double seconds = 0.0;
  std::int64_t runs = 0;
  std::int64_t events = 0;  // serial + mesh messages + 2x firings
  double runs_per_second() const {
    return seconds > 0.0 ? static_cast<double>(runs) / seconds : 0.0;
  }
  double events_per_second() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

// Repetitions per (case, scheduler): enough for a stable wall-clock on
// this host without making CI smoke runs slow.
constexpr int kReps = 40;

Measurement run_case(const Case& c, javaflow::sim::SchedulerKind kind,
                     const std::vector<const javaflow::bytecode::Method*>&
                         methods,
                     const std::vector<javaflow::fabric::DataflowGraph>&
                         graphs,
                     std::vector<javaflow::sim::RunMetrics>* out_metrics) {
  javaflow::sim::EngineOptions options;
  options.scheduler = kind;
  javaflow::sim::Engine engine(javaflow::sim::config_by_name(c.config),
                               options);
  Measurement m;
  if (out_metrics != nullptr) out_metrics->clear();
  const auto t0 = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < methods.size(); ++i) {
      javaflow::sim::BranchPredictor predictor(
          javaflow::sim::BranchPredictor::Scenario::BP1);
      const javaflow::sim::RunMetrics r =
          engine.run(*methods[i], graphs[i], predictor);
      ++m.runs;
      // Event-count proxy: one event per serial/mesh delivery plus an
      // ExecDone (and roughly a ServiceDone) per firing.
      m.events += r.serial_messages + r.mesh_messages +
                  2 * r.instructions_fired;
      if (rep == 0 && out_metrics != nullptr) out_metrics->push_back(r);
    }
  }
  m.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return m;
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;
  const std::vector<const javaflow::bytecode::Method*> methods =
      ctx.kernel_methods();
  std::vector<javaflow::fabric::DataflowGraph> graphs;
  graphs.reserve(methods.size());
  for (const javaflow::bytecode::Method* m : methods) {
    graphs.push_back(
        javaflow::fabric::build_dataflow_graph(*m, ctx.corpus.program.pool));
  }

  const Case cases[] = {
      {"queue_stress", "Compact2"},
      {"fire_drain", "Baseline"},
  };

  std::printf("engine_kernel: %zu kernel methods x %d reps per case\n",
              methods.size(), kReps);

  bool all_identical = true;
  std::string rows;
  for (const Case& c : cases) {
    std::vector<javaflow::sim::RunMetrics> heap_metrics, cal_metrics;
    const Measurement heap = run_case(c, javaflow::sim::SchedulerKind::Heap,
                                      methods, graphs, &heap_metrics);
    const Measurement cal =
        run_case(c, javaflow::sim::SchedulerKind::Calendar, methods, graphs,
                 &cal_metrics);
    const bool identical = heap_metrics == cal_metrics;
    all_identical = all_identical && identical;
    const double ratio = heap.runs_per_second() > 0.0
                             ? cal.runs_per_second() / heap.runs_per_second()
                             : 0.0;
    std::printf("  %-12s heap: %8.1f runs/s (%.2fM events/s)\n", c.name,
                heap.runs_per_second(), heap.events_per_second() / 1e6);
    std::printf("  %-12s cal:  %8.1f runs/s (%.2fM events/s)  %.2fx  "
                "identical: %s\n",
                c.name, cal.runs_per_second(),
                cal.events_per_second() / 1e6, ratio,
                identical ? "yes" : "NO");

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"case\": \"%s\", \"config\": \"%s\", "
        "\"heap_runs_per_second\": %.2f, "
        "\"calendar_runs_per_second\": %.2f, "
        "\"heap_events_per_second\": %.1f, "
        "\"calendar_events_per_second\": %.1f, "
        "\"calendar_vs_heap\": %.4f, \"identical\": %s}",
        c.name, c.config, heap.runs_per_second(), cal.runs_per_second(),
        heap.events_per_second(), cal.events_per_second(), ratio,
        identical ? "true" : "false");
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }

  std::ofstream json("BENCH_kernel.json");
  json << "{\n"
       << "  \"benchmark\": \"engine_kernel\",\n"
       << "  \"metadata\": {\n"
       << "    \"git_sha\": \"" << javaflow::bench::git_sha() << "\",\n"
       << "    \"timestamp_utc\": \""
       << javaflow::bench::iso_timestamp_utc() << "\",\n"
       << "    \"methods\": " << methods.size() << ",\n"
       << "    \"reps\": " << kReps << "\n"
       << "  },\n"
       << "  \"cases\": [\n"
       << rows << "\n  ],\n"
       << "  \"identical\": " << (all_identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote BENCH_kernel.json\n");

  // Divergent schedulers are a correctness bug, not a perf result.
  return all_identical ? 0 : 1;
}
