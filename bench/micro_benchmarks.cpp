// google-benchmark micro-benchmarks for the reproduction's own hot
// machinery: graph building, resolution, engine runs, interpreter
// throughput, and network math.
#include <benchmark/benchmark.h>

#include "bytecode/assembler.hpp"
#include "core/javaflow.hpp"
#include "fabric/dataflow_graph.hpp"
#include "jvm/interpreter.hpp"
#include "net/mesh_network.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace javaflow;

struct Fixture {
  bytecode::Program program;
  bytecode::Method method;
  Fixture() {
    workloads::GeneratorOptions opt;
    opt.target_size = 120;
    method = workloads::generate_method(program, "micro.m(IIADFJ)I",
                                        "micro", 4242, opt);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_MeshDistance(benchmark::State& state) {
  net::MeshNetwork mesh(10);
  std::int64_t acc = 0;
  int a = 0;
  for (auto _ : state) {
    acc += mesh.distance(a & 1023, (a * 37) & 1023);
    ++a;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_MeshDistance);

void BM_BuildDataflowGraph(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    auto g = fabric::build_dataflow_graph(f.method, f.program.pool);
    benchmark::DoNotOptimize(g.total_dflows);
  }
}
BENCHMARK(BM_BuildDataflowGraph);

void BM_DeployMethod(benchmark::State& state) {
  Fixture& f = fixture();
  JavaFlowMachine machine(sim::config_by_name("Hetero2"));
  for (auto _ : state) {
    auto d = machine.deploy(f.method, f.program.pool);
    benchmark::DoNotOptimize(d.resolution.total_cycles);
  }
}
BENCHMARK(BM_DeployMethod);

void BM_ExecuteMethod(benchmark::State& state) {
  Fixture& f = fixture();
  const std::string config =
      state.range(0) == 0 ? "Baseline" : "Hetero2";
  JavaFlowMachine machine(sim::config_by_name(config));
  auto d = machine.deploy(f.method, f.program.pool);
  for (auto _ : state) {
    auto r = machine.execute(d, sim::BranchPredictor::Scenario::BP1);
    benchmark::DoNotOptimize(r.instructions_fired);
  }
  state.SetLabel(config);
}
BENCHMARK(BM_ExecuteMethod)->Arg(0)->Arg(1);

void BM_InterpreterLoop(benchmark::State& state) {
  bytecode::Program p;
  bytecode::Assembler a(p, "micro.sum(I)I", "micro");
  a.args({bytecode::ValueType::Int}).returns(bytecode::ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(0).istore(1);
  a.goto_(test);
  a.bind(body);
  a.iload(1).iload(0).op(bytecode::Op::iadd).istore(1);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(1).op(bytecode::Op::ireturn);
  p.methods.push_back(a.build());
  jvm::Interpreter vm(p);
  for (auto _ : state) {
    auto v = vm.invoke("micro.sum(I)I", {jvm::Value::make_int(1000)});
    benchmark::DoNotOptimize(v.as_int());
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 7);
}
BENCHMARK(BM_InterpreterLoop);

void BM_GenerateMethod(benchmark::State& state) {
  workloads::GeneratorOptions opt;
  opt.target_size = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    bytecode::Program p;
    auto m = workloads::generate_method(p, "g.x(IIADFJ)I", "g", seed++, opt);
    benchmark::DoNotOptimize(m.code.size());
  }
}
BENCHMARK(BM_GenerateMethod)->Arg(30)->Arg(300);

}  // namespace

BENCHMARK_MAIN();
