// Ablation: instruction folding (§6.4).
//
// The paper's Chapter 7 results exclude folding ("The analysis reported
// in Chapter 7 does not account for this folding enhancement") but
// Table 2 motivates it: Locals+Stack instructions are 26-54 % of the
// dynamic mix. This harness measures what the implemented stack-move
// folding actually buys: elided node counts and the IPC delta on the
// heterogeneous fabric.
#include <cstdio>

#include "fabric/folding.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;
  const int stride = std::max(javaflow::bench::env_stride(), 2);

  javaflow::analysis::print_header(
      "Ablation — instruction folding (§6.4 enhancement)");

  std::int64_t insts = 0, foldable = 0;
  for (const auto* m : ctx.all_methods()) {
    insts += static_cast<std::int64_t>(m->code.size());
    foldable += javaflow::fabric::foldable_count(*m);
  }
  std::printf(
      "corpus: %lld instructions, %lld foldable stack movers (%.1f%%)\n",
      static_cast<long long>(insts), static_cast<long long>(foldable),
      100.0 * static_cast<double>(foldable) / static_cast<double>(insts));

  javaflow::sim::Engine engine(javaflow::sim::config_by_name("Hetero2"));
  double base_ipc_sum = 0, folded_ipc_sum = 0;
  std::int64_t base_nodes = 0, folded_nodes = 0;
  int n = 0;
  const auto methods = ctx.all_methods();
  for (std::size_t i = 0; i < methods.size();
       i += static_cast<std::size_t>(stride)) {
    const auto& m = *methods[i];
    const auto graph =
        javaflow::fabric::build_dataflow_graph(m, ctx.corpus.program.pool);
    javaflow::sim::BranchPredictor bp1(
        javaflow::sim::BranchPredictor::Scenario::BP1);
    const auto base = engine.run(m, graph, bp1);
    const auto folded_method =
        javaflow::fabric::fold_moves(m, ctx.corpus.program.pool);
    if (!folded_method.ok || !base.fits || !base.completed) continue;
    javaflow::sim::BranchPredictor bp1b(
        javaflow::sim::BranchPredictor::Scenario::BP1);
    const auto folded =
        engine.run(folded_method.method, folded_method.graph, bp1b);
    if (!folded.fits || !folded.completed) continue;
    base_ipc_sum += base.ipc();
    // Fair comparison: useful (unfolded) instructions per folded cycle.
    folded_ipc_sum += static_cast<double>(base.instructions_fired) /
                      static_cast<double>(folded.mesh_cycles);
    base_nodes += base.max_slot + 1;
    folded_nodes += folded.max_slot + 1;
    ++n;
  }
  Table t("Folding ablation — Hetero2, BP-1 (per-method means)");
  t.columns({"Variant", "Effective IPC", "Fabric nodes"});
  t.row({"unfolded (paper Ch.7)", Table::num(base_ipc_sum / n, 3),
         Table::big(static_cast<std::uint64_t>(base_nodes))});
  t.row({"folded (§6.4)", Table::num(folded_ipc_sum / n, 3),
         Table::big(static_cast<std::uint64_t>(folded_nodes))});
  t.print();
  std::printf(
      "\n%d methods compared. Folding returns %.1f%% of fabric nodes to\n"
      "the free pool and speeds execution by %.1f%% — the direction the\n"
      "paper predicted, small because JAVAC-style code uses few explicit\n"
      "stack movers (the larger locals-folding idea remains future work,\n"
      "as in the paper).\n",
      n,
      100.0 * (1.0 - static_cast<double>(folded_nodes) /
                         static_cast<double>(base_nodes)),
      100.0 * (folded_ipc_sum / base_ipc_sum - 1.0));
  return 0;
}
