// Reproduces Tables 9-14: the Filter 1 dataflow statistics — method
// sizes/registers/stack (9), fan-out and arcs (10), needs-up queue depth
// (11), merges (12), and forward/backward jump counts and lengths (13-14).
#include <cstdio>

#include "analysis/dataflow_analysis.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Summary;
using javaflow::analysis::Table;

namespace {

void stat_table(const std::string& title,
                const std::vector<std::pair<std::string, Summary>>& cols,
                const std::string& note) {
  javaflow::analysis::print_header(title);
  javaflow::bench::paper_note(note);
  Table t(title);
  t.columns({"Stat", "Mean", "StdDev", "Median", "Max", "Min"});
  for (const auto& [name, s] : cols) {
    t.row({name, Table::num(s.mean), Table::num(s.std_dev),
           Table::num(s.median), Table::num(s.max), Table::num(s.min)});
  }
  t.print();
}

}  // namespace

int main() {
  javaflow::bench::Context ctx;

  // Filter 1 population: 10 < insts < 1000.
  std::vector<const javaflow::bytecode::Method*> filtered;
  for (const auto* m : ctx.all_methods()) {
    if (m->code.size() > 10 && m->code.size() < 1000) filtered.push_back(m);
  }
  std::printf("Filter 1 population: %zu methods (paper: 915)\n",
              filtered.size());
  const auto records =
      javaflow::analysis::analyze_dataflow(filtered, ctx.corpus.program.pool);
  const auto s = javaflow::analysis::summarize_dataflow(records);

  stat_table("Table 9 — General Data Flow Analysis (Filter 1)",
             {{"Static Inst", s.static_insts},
              {"Local Regs", s.local_regs},
              {"Stack", s.stack}},
             "mean 56 / median 29 insts; 4.45 regs; 3.88 stack; "
             "back merge 0 everywhere");
  std::printf("back merges total: %lld (paper: 0)\n",
              static_cast<long long>(s.back_merges_total));

  stat_table("Table 10 — DataFlow FanOut and Arc Analysis (Filter 1)",
             {{"FanOut Avg", s.fanout_avg},
              {"FanOut Max", s.fanout_max},
              {"Arc Avg", s.arc_avg},
              {"Arc Max", s.arc_max}},
             "FanOut mean 1.04 / max 4; Arc avg 1.88 / max up to 187");

  stat_table("Table 11 — DataFlow Resolution Queue Analysis (Filter 1)",
             {{"Max Q Up", s.max_queue_up}},
             "mean 3.03, median 3, max 11");

  stat_table("Table 12 — DataFlow Merge Analysis (Filter 1)",
             {{"Merges", s.merges}}, "mean 0.29, median 0, max 9");

  stat_table("Table 13 — Jump Forward Analysis (Filter 1)",
             {{"Forward Jumps", s.forward_jumps},
              {"Avg Length", s.forward_len_avg},
              {"Max Length", s.forward_len_max}},
             "mean 3.07 jumps, avg length 12, max 803");

  stat_table("Table 14 — Jump Backward Analysis (Filter 1)",
             {{"Back Jumps", s.back_jumps},
              {"Avg Length", s.back_len_avg},
              {"Max Length", s.back_len_max}},
             "mean 0.61 jumps, median 0, far fewer than forward jumps");
  return 0;
}
