// Reproduces Table 7 (benchmark DataFlow and ControlFlow analysis) and
// Table 8 (analysis summary).
//
// Paper's key results: ZERO DataFlow back merges anywhere, and the serial
// resolution completing in ~2x the instruction count ("Total Cycles" /
// "Total Insts" = 45807/22537 = 2.03).
#include <cstdio>

#include "analysis/dataflow_analysis.hpp"
#include "analysis/mix.hpp"
#include "bench_common.hpp"

using javaflow::analysis::Table;

int main() {
  javaflow::bench::Context ctx;
  ctx.run_drivers();

  const auto records = javaflow::analysis::analyze_dataflow(
      ctx.kernel_methods(), ctx.corpus.program.pool);

  javaflow::analysis::print_header(
      "Table 7 — Benchmark DataFlow and Control Flow Analysis");
  javaflow::bench::paper_note(
      "Sum row: 812 fwd, 187 back, 22537 insts, 45807 cycles (2.03x), "
      "18082 DFlows, 49 merges, 0 back merges.");
  Table t7("DataFlow / ControlFlow analysis — kernel methods");
  t7.columns({"Benchmark", "Forward", "Back", "Total Insts", "Total Cycles",
              "Cycles/Inst", "DFlows", "Merges", "DFlows Back"});
  for (const auto& row : javaflow::analysis::benchmark_dataflow_rows(records)) {
    t7.row({row.benchmark, std::to_string(row.forward),
            std::to_string(row.back), Table::big(row.total_insts),
            Table::big(row.total_cycles),
            Table::num(static_cast<double>(row.total_cycles) /
                           static_cast<double>(row.total_insts),
                       2),
            Table::big(row.total_dflows), std::to_string(row.total_merges),
            std::to_string(row.total_back_merges)});
  }
  t7.print();

  // Table 8 roll-up.
  javaflow::analysis::print_header("Table 8 — Analysis Summary");
  javaflow::bench::paper_note(
      "avg 71 insts/method, 6 regs/method, 4.6 fwd branches, 1 back "
      "branch; static mix 60/10/10/20.");
  const auto s = javaflow::analysis::summarize_dataflow(records);
  const auto util = javaflow::analysis::method_utilization(ctx.profiler);
  std::uint64_t dyn_ops = 0;
  for (const auto& row : util) dyn_ops += row.total_ops;
  Table t8("Summary");
  t8.columns({"Quantity", "Measured", "Paper"});
  t8.row({"Dynamic instructions executed", Table::big(dyn_ops), "2.7e11"});
  t8.row({"Hot methods analyzed", std::to_string(records.size()), "160"});
  t8.row({"Avg insts/method", Table::num(s.static_insts.mean, 1), "71"});
  t8.row({"Avg registers/method", Table::num(s.local_regs.mean, 1), "6"});
  t8.row({"Avg forward branches", Table::num(s.forward_jumps.mean, 1),
          "4.6"});
  t8.row({"Avg back branches", Table::num(s.back_jumps.mean, 1), "1"});
  t8.row({"Back merges (total)", std::to_string(s.back_merges_total), "0"});
  t8.print();
  return 0;
}
