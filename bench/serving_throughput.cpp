// Serving throughput harness: drives the deterministic request stream
// through the multi-tenant serving frontend (serve::serve) on all six
// Table 15 configurations, times each run, re-runs it to assert
// bit-identical behavior (digest equality), and emits
// BENCH_serving.json so the serving perf trajectory is tracked across
// PRs (tools/bench_gate.py --serving).
//
// Knobs: JAVAFLOW_SERVE_SEED / _REQUESTS / _MEAN_GAP override the
// stream shape for local experiments (the CI smoke run uses the
// defaults); JAVAFLOW_THREADS must not change any digest — the engine
// calendar is single-threaded by design.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "sim/config.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct TimedServe {
  javaflow::serve::ServeReport report;
  double seconds = 0.0;
};

TimedServe timed_serve(const javaflow::workloads::Corpus& corpus,
                       const std::vector<std::int32_t>& methods,
                       const javaflow::sim::MachineConfig& cfg,
                       const javaflow::serve::RequestStreamOptions& stream) {
  const auto t0 = Clock::now();
  TimedServe out;
  out.report = javaflow::serve::serve(corpus.program, methods, cfg, stream);
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

}  // namespace

int main() {
  // Kernel-only corpus: the serving mix wants methods the fabric can
  // place several of at once, and the hand-written kernels span the
  // size range the paper's Chapter 8 superposition argument needs.
  const javaflow::workloads::Corpus corpus =
      javaflow::workloads::make_corpus({/*seed=*/20141215,
                                        /*total_methods=*/0});
  std::vector<std::int32_t> methods;
  for (std::size_t i = 0; i < corpus.program.methods.size(); ++i) {
    methods.push_back(static_cast<std::int32_t>(i));
  }

  javaflow::serve::RequestStreamOptions stream;
  stream.seed = static_cast<std::uint64_t>(
      javaflow::util::env_int("JAVAFLOW_SERVE_SEED", 1, 1));
  stream.num_requests = static_cast<std::int32_t>(
      javaflow::util::env_int("JAVAFLOW_SERVE_REQUESTS", 96, 1));
  stream.mean_gap_ticks =
      javaflow::util::env_int("JAVAFLOW_SERVE_MEAN_GAP", 48, 1);

  std::printf("serving_throughput: seed=%llu requests=%d mean_gap=%lld\n",
              static_cast<unsigned long long>(stream.seed),
              stream.num_requests,
              static_cast<long long>(stream.mean_gap_ticks));

  bool identical = true;
  bool overlap_ok = true;
  double total_seconds = 0.0;
  std::int64_t total_requests = 0;
  std::string rows;

  std::ofstream json("BENCH_serving.json");
  json << "{\n"
       << "  \"benchmark\": \"serving_throughput\",\n"
       << "  \"metadata\": {\n"
       << "    \"git_sha\": \"" << javaflow::bench::git_sha() << "\",\n"
       << "    \"timestamp_utc\": \"" << javaflow::bench::iso_timestamp_utc()
       << "\",\n"
       << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
       << "\n  },\n"
       << "  \"seed\": " << stream.seed << ",\n"
       << "  \"requests\": " << stream.num_requests << ",\n"
       << "  \"mean_gap_ticks\": " << stream.mean_gap_ticks << ",\n"
       << "  \"configs\": [";

  bool first = true;
  for (const javaflow::sim::MachineConfig& cfg :
       javaflow::sim::table15_configs()) {
    const TimedServe a = timed_serve(corpus, methods, cfg, stream);
    const TimedServe b = timed_serve(corpus, methods, cfg, stream);
    const bool same = a.report.digest() == b.report.digest();
    identical = identical && same;
    // Superposition witness (Chapter 8): any fabric wide enough for two
    // residencies must actually overlap them under this stream. The
    // two-node configs can legitimately serialize, so only the larger
    // fabrics are asserted.
    const bool must_overlap = cfg.name == "Baseline" ||
                              cfg.name == "Compact10" ||
                              cfg.name == "Compact4";
    if (must_overlap && a.report.ticks_res_2plus == 0) overlap_ok = false;

    total_seconds += a.seconds;
    total_requests += a.report.requests;
    const double rps =
        a.seconds > 0.0 ? static_cast<double>(a.report.requests) / a.seconds
                        : 0.0;
    std::printf(
        "  %-10s %5lld req  %6lld done  %4lld evict  p50=%-6lld "
        "p99=%-6lld overlap=%-8lld %8.1f req/s %s\n",
        cfg.name.c_str(), static_cast<long long>(a.report.requests),
        static_cast<long long>(a.report.completed),
        static_cast<long long>(a.report.evictions),
        static_cast<long long>(a.report.latency_p50),
        static_cast<long long>(a.report.latency_p99),
        static_cast<long long>(a.report.ticks_res_2plus),
        rps, same ? "" : "DIGEST MISMATCH");

    if (!first) json << ",";
    first = false;
    json << "\n    {\"wall_seconds\": " << a.seconds
         << ", \"requests_per_second\": " << rps
         << ", \"identical\": " << (same ? "true" : "false")
         << ",\n     \"report\": ";
    a.report.write_json(json);
    json << "}";
  }

  const double rps_total =
      total_seconds > 0.0 ? static_cast<double>(total_requests) / total_seconds
                          : 0.0;
  json << "\n  ],\n"
       << "  \"wall_seconds\": " << total_seconds << ",\n"
       << "  \"requests_per_second\": " << rps_total << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"overlap_ok\": " << (overlap_ok ? "true" : "false") << "\n"
       << "}\n";

  std::printf("  total: %.3f s, %.1f req/s across six configs\n",
              total_seconds, rps_total);
  std::printf("  identical reruns: %s, overlap: %s\n",
              identical ? "yes" : "NO", overlap_ok ? "yes" : "NO");
  std::printf("wrote BENCH_serving.json\n");

  // Either failure is a determinism or superposition regression: fail
  // loudly so the CI bench step catches it.
  return identical && overlap_ok ? 0 : 1;
}
