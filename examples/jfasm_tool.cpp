// jfasm_tool — command-line front end for the library.
//
//   jfasm_tool dump                        write the kernel corpus as .jfasm
//   jfasm_tool list <file.jfasm>           list methods in a program image
//   jfasm_tool disasm <file.jfasm> <name>  JAVAP-style listing of a method
//   jfasm_tool run <file.jfasm> <name> [config] [bp1|bp2]
//                                          deploy + execute on the fabric
//
// The .jfasm format is the reproduction's analogue of the Jasmine
// assembler files the paper's analysis pipeline consumed (§5.3).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bytecode/printer.hpp"
#include "bytecode/textio.hpp"
#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  jfasm_tool dump\n"
               "  jfasm_tool list <file.jfasm>\n"
               "  jfasm_tool disasm <file.jfasm> <method>\n"
               "  jfasm_tool run <file.jfasm> <method> [config] [bp1|bp2]\n");
  return 2;
}

bytecode::Program load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(std::string("cannot open ") + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return bytecode::parse_program(buf.str());
}

int cmd_dump() {
  workloads::CorpusOptions opt;
  opt.total_methods = 0;  // kernels only
  const workloads::Corpus corpus = workloads::make_corpus(opt);
  bytecode::write_program(corpus.program, std::cout);
  return 0;
}

int cmd_list(const char* path) {
  const bytecode::Program p = load(path);
  for (const auto& m : p.methods) {
    std::printf("%-70s %4zu insts  %2d locals  %2d stack%s\n",
                m.name.c_str(), m.code.size(), m.max_locals, m.max_stack,
                m.is_static ? "" : "  (instance)");
  }
  std::printf("%zu methods, %zu classes\n", p.methods.size(),
              p.classes.size());
  return 0;
}

int cmd_disasm(const char* path, const char* name) {
  const bytecode::Program p = load(path);
  const bytecode::Method* m = p.find(name);
  if (m == nullptr) {
    std::fprintf(stderr, "no such method: %s\n", name);
    return 1;
  }
  std::printf("%s", bytecode::disassemble(*m, p.pool).c_str());
  return 0;
}

int cmd_run(const char* path, const char* name, const char* config,
            const char* scenario) {
  const bytecode::Program p = load(path);
  const bytecode::Method* m = p.find(name);
  if (m == nullptr) {
    std::fprintf(stderr, "no such method: %s\n", name);
    return 1;
  }
  JavaFlowMachine machine(sim::config_by_name(config));
  const DeployedMethod d = machine.deploy(*m, p.pool);
  if (!d.ok()) {
    std::fprintf(stderr, "%s does not fit the %s fabric\n", name, config);
    return 1;
  }
  const auto bp = std::strcmp(scenario, "bp2") == 0
                      ? sim::BranchPredictor::Scenario::BP2
                      : sim::BranchPredictor::Scenario::BP1;
  const sim::RunMetrics r = machine.execute(d, bp);
  std::printf(
      "%s on %s (%s):\n"
      "  placement : %d nodes for %zu instructions (%.2f nodes/inst)\n"
      "  resolution: %lld serial cycles (%.2fx insts), %d DFlows, "
      "%d merges\n"
      "  execution : %s, %lld fired / %lld mesh cycles, IPC %.3f,\n"
      "              coverage %.0f%%, parallel(2+) %.0f%%\n",
      name, config, scenario, d.placement.max_slot + 1, m->code.size(),
      d.placement.nodes_per_instruction(m->code.size()),
      static_cast<long long>(d.resolution.total_cycles),
      static_cast<double>(d.resolution.total_cycles) /
          static_cast<double>(m->code.size()),
      d.resolution.total_dflows, d.resolution.merges,
      r.completed ? (r.exception ? "exception" : "completed") : "stuck",
      static_cast<long long>(r.instructions_fired),
      static_cast<long long>(r.mesh_cycles), r.ipc(), 100 * r.coverage(),
      100 * r.parallel_2plus());
  return r.completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "dump") == 0) {
      return cmd_dump();
    }
    if (argc >= 3 && std::strcmp(argv[1], "list") == 0) {
      return cmd_list(argv[2]);
    }
    if (argc >= 4 && std::strcmp(argv[1], "disasm") == 0) {
      return cmd_disasm(argv[2], argv[3]);
    }
    if (argc >= 4 && std::strcmp(argv[1], "run") == 0) {
      return cmd_run(argv[2], argv[3], argc > 4 ? argv[4] : "Hetero2",
                     argc > 5 ? argv[5] : "bp1");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
