// Domain workload: the SPEC-compress analogue end to end.
//
// Runs the LZW compressor/decompressor kernels under the reference
// interpreter (validating the byte-exact round trip), reports the dynamic
// instruction profile the paper's Chapter 5 collects, then deploys the
// hot method — Compressor.compress()V — to the fabric and reports the
// machine-level metrics for it.
//
//   $ ./build/examples/compress_workload
#include <cstdio>

#include "analysis/mix.hpp"
#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

int main() {
  workloads::Suite suite = workloads::make_suite();
  jvm::Profiler profiler;
  jvm::Interpreter vm(suite.program, &profiler);

  // 1. Run the workload (the driver validates the LZW round trip).
  for (workloads::Benchmark& b : suite.benchmarks) {
    if (b.name == "compress") {
      b.run(vm);
      std::printf("compress workload ran and validated (round trip OK)\n");
    }
  }

  // 2. Dynamic profile, Table 1/3 style.
  std::printf("\nhottest methods:\n");
  int shown = 0;
  for (const auto& [name, stats] : profiler.by_hotness()) {
    if (stats->benchmark != "compress") continue;
    std::printf("  %-58s %12llu ops\n", name.c_str(),
                static_cast<unsigned long long>(stats->total_ops));
    if (++shown == 5) break;
  }
  const auto quick = analysis::quick_impact(profiler);
  std::printf("storage ops resolved to _Quick forms: %.1f%% (paper: 97%%+)\n",
              quick.quick_percentage * 100);

  // 3. Deploy the hot method to the fabric.
  const bytecode::Method* hot =
      suite.program.find("spec.benchmarks.compress.Compressor.compress()V");
  JavaFlowMachine machine(sim::config_by_name("Hetero2"));
  const DeployedMethod d = machine.deploy(*hot, suite.program.pool);
  if (!d.ok()) {
    std::fprintf(stderr, "compress()V did not fit\n");
    return 1;
  }
  std::printf(
      "\ncompress()V on the heterogeneous fabric:\n"
      "  %zu instructions across %d nodes, %d DataFlow links, %d merges, "
      "%d back merges\n",
      hot->code.size(), d.placement.max_slot + 1,
      d.resolution.total_dflows, d.resolution.merges,
      d.resolution.back_merges);
  const auto r = machine.execute(d, sim::BranchPredictor::Scenario::BP1);
  std::printf(
      "  executed: IPC %.3f over %lld mesh cycles, coverage %.0f%%\n",
      r.ipc(), static_cast<long long>(r.mesh_cycles), r.coverage() * 100);
  return 0;
}
