// Multi-method residency: the FabricManager keeping several hot kernels
// resident in one 10,000-node fabric at once — the deployment story the
// paper's Chapter 8 closes on ("With the ability to load multiple methods
// into the DataFlow Fabric at the same time, these methods can be
// executing simultaneously... an argument of superposition").
//
//   $ ./build/examples/multi_method_residency
#include <cstdio>

#include "core/fabric_manager.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

int main() {
  workloads::CorpusOptions opt;
  opt.total_methods = 0;  // kernels only
  workloads::Corpus corpus = workloads::make_corpus(opt);

  FabricManager mgr(sim::config_by_name("Hetero2"));
  std::printf("heterogeneous fabric: %d Instruction Nodes\n\n",
              mgr.capacity());

  // Load every kernel that fits, like a warmed-up method cache.
  std::vector<std::pair<FabricManager::MethodId, const bytecode::Method*>>
      resident;
  for (const auto& m : corpus.program.methods) {
    const auto id = mgr.load(m, corpus.program.pool);
    if (id.has_value()) resident.emplace_back(*id, &m);
  }
  std::printf(
      "resident: %zu of %zu kernel methods, %d of %d nodes occupied "
      "(%.0f%%)\n\n",
      resident.size(), corpus.program.methods.size(), mgr.occupied_slots(),
      mgr.capacity(),
      100.0 * mgr.occupied_slots() / mgr.capacity());

  // Execute each resident method; their IPCs superpose.
  double aggregate = 0;
  int ran = 0;
  for (const auto& [id, m] : resident) {
    const auto r = mgr.execute(id, sim::BranchPredictor::Scenario::BP1);
    if (!r || !r->completed) continue;
    aggregate += r->ipc();
    ++ran;
  }
  std::printf(
      "executed %d resident methods; aggregate fabric IPC (superposition "
      "argument, Ch.8): %.2f\n\n",
      ran, aggregate);

  // GC support: quiesce one method and rebind its memory pointers.
  const auto cycles = mgr.quiesce_and_rebind(resident.front().first);
  if (cycles) {
    std::printf(
        "quiesce + pointer rebind of %s: %lld serial cycles (§6.4 GC "
        "support)\n",
        resident.front().second->name.c_str(),
        static_cast<long long>(*cycles));
  }

  // Unload half the cache, reload something into the freed space.
  for (std::size_t k = 0; k < resident.size(); k += 2) {
    mgr.unload(resident[k].first);
  }
  std::printf("after unloading every other method: %d nodes occupied\n",
              mgr.occupied_slots());
  const auto again =
      mgr.load(*resident.front().second, corpus.program.pool);
  std::printf("reloaded %s at anchor slot %d (reusing freed nodes)\n",
              resident.front().second->name.c_str(),
              again ? mgr.find(*again)->anchor_slot : -1);
  return 0;
}
