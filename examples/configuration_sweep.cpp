// Configuration sweep: run the SciMark FFT kernel (the paper's
// scimark.fft.large hot method) across all six Table 15 configurations
// and print the Figure-of-Merit column — a single-method slice of the
// dissertation's Chapter 7 evaluation.
//
//   $ ./build/examples/configuration_sweep [method-name]
#include <cstdio>
#include <string>

#include "core/javaflow.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

int main(int argc, char** argv) {
  const std::string name =
      argc > 1 ? argv[1] : "scimark.fft.FFT.transform_internal(AI)V";

  workloads::CorpusOptions opt;
  opt.total_methods = 0;  // kernels only
  workloads::Corpus corpus = workloads::make_corpus(opt);
  const bytecode::Method* method = corpus.program.find(name);
  if (method == nullptr) {
    std::fprintf(stderr, "unknown method %s — try one of:\n", name.c_str());
    for (const auto& m : corpus.program.methods) {
      std::fprintf(stderr, "  %s\n", m.name.c_str());
    }
    return 1;
  }

  std::printf("%-12s %10s %8s %8s %8s %8s %10s\n", "Case", "MeshCyc",
              "Fired", "IPC", "FoM", "Cover", "Nodes/Inst");
  double baseline = 0.0;
  for (const auto& cfg : sim::table15_configs()) {
    JavaFlowMachine machine(cfg);
    const DeployedMethod d = machine.deploy(*method, corpus.program.pool);
    if (!d.ok()) {
      std::printf("%-12s does not fit\n", cfg.name.c_str());
      continue;
    }
    // Average the paper's two branch scenarios.
    double ipc = 0, cov = 0;
    std::int64_t cycles = 0, fired = 0;
    for (const auto sc : {sim::BranchPredictor::Scenario::BP1,
                          sim::BranchPredictor::Scenario::BP2}) {
      const auto r = machine.execute(d, sc);
      ipc += r.ipc() / 2;
      cov += r.coverage() / 2;
      cycles += r.mesh_cycles / 2;
      fired += r.instructions_fired / 2;
    }
    if (cfg.name == "Baseline") baseline = ipc;
    std::printf("%-12s %10lld %8lld %8.3f %7.0f%% %7.0f%% %10.2f\n",
                cfg.name.c_str(), static_cast<long long>(cycles),
                static_cast<long long>(fired), ipc,
                baseline > 0 ? 100 * ipc / baseline : 0, 100 * cov,
                d.placement.nodes_per_instruction(method->code.size()));
  }
  std::printf(
      "\nThe FoM column is the paper's Table 22 shape: the heterogeneous\n"
      "fabric lands near 40%% of the collapsed baseline.\n");
  return 0;
}
