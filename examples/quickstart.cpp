// Quickstart: assemble a Java method, deploy it to the JavaFlow fabric,
// and execute it on the heterogeneous configuration.
//
//   $ ./build/examples/quickstart
//
// Walks the paper's full lifecycle: ByteCode -> greedy fabric load
// (Figure 20) -> serial address resolution (§6.2) -> token-bundle
// execution (§6.3) -> IPC metrics (Chapter 7).
#include <cstdio>

#include "core/javaflow.hpp"
#include "jvm/interpreter.hpp"

using namespace javaflow;

int main() {
  // 1. Write a Java method in ByteCode: int sum(int n) — JAVAC's
  //    bottom-test loop shape.
  bytecode::Program program;
  bytecode::Assembler a(program, "demo.sum(I)I", "quickstart");
  a.args({bytecode::ValueType::Int}).returns(bytecode::ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iconst(0).istore(1);       // int acc = 0
  a.goto_(test);
  a.bind(body);
  a.iload(1).iload(0).op(bytecode::Op::iadd).istore(1);  // acc += n
  a.iinc(0, -1);                                         // n--
  a.bind(test);
  a.iload(0).ifgt(body);       // while (n > 0)
  a.iload(1).op(bytecode::Op::ireturn);
  const bytecode::Method method = a.build();
  std::printf("assembled %s: %zu instructions, %d locals, stack %d\n",
              method.name.c_str(), method.code.size(), method.max_locals,
              method.max_stack);

  // 2. Check it computes the right answer on the reference interpreter.
  jvm::Interpreter vm(program);
  program.methods.push_back(method);
  const auto v =
      vm.invoke("demo.sum(I)I", {jvm::Value::make_int(100)});
  std::printf("interpreter: sum(100) = %d (expect 5050)\n", v.as_int());

  // 3. Deploy to the heterogeneous DataFlow fabric.
  JavaFlowMachine machine(sim::config_by_name("Hetero2"));
  const DeployedMethod deployed = machine.deploy(method, program.pool);
  if (!deployed.ok()) {
    std::fprintf(stderr, "method did not fit the fabric\n");
    return 1;
  }
  std::printf(
      "deployed: %zu instructions span %d fabric nodes "
      "(%.2f nodes/instruction), resolution took %lld serial cycles\n",
      method.code.size(), deployed.placement.max_slot + 1,
      deployed.placement.nodes_per_instruction(method.code.size()),
      static_cast<long long>(deployed.resolution.total_cycles));

  // 4. Execute under the paper's BP-1 branch scenario.
  const sim::RunMetrics r =
      machine.execute(deployed, sim::BranchPredictor::Scenario::BP1);
  std::printf(
      "executed: %lld instructions fired over %lld mesh cycles -> IPC "
      "%.3f, coverage %.0f%%, parallel(2+) %.0f%%\n",
      static_cast<long long>(r.instructions_fired),
      static_cast<long long>(r.mesh_cycles), r.ipc(), r.coverage() * 100,
      r.parallel_2plus() * 100);
  return 0;
}
