// Fabric anatomy: a guided walk through what the machine does with a
// method — the loading stream, the resolved producer/consumer links, and
// the token-bundle execution — printed step by step. This is the
// explainer-style example mirroring the paper's §6.2-§6.3 narrative.
//
//   $ ./build/examples/fabric_anatomy
#include <cstdio>

#include "bytecode/printer.hpp"
#include "core/javaflow.hpp"

using namespace javaflow;

int main() {
  // The paper's Figure 21 method, extended with a small loop so the
  // backward-flush machinery appears too.
  bytecode::Program program;
  bytecode::Assembler a(program, "anatomy.demo(III)I", "example");
  a.args({bytecode::ValueType::Int, bytecode::ValueType::Int,
          bytecode::ValueType::Int})
      .returns(bytecode::ValueType::Int);
  auto body = a.new_label(), test = a.new_label();
  a.iload(0).iload(1).op(bytecode::Op::iadd);
  a.iload(2).op(bytecode::Op::iadd).istore(3);
  a.goto_(test);
  a.bind(body);
  a.iload(3).iconst(2).op(bytecode::Op::imul).istore(3);
  a.iinc(0, -1);
  a.bind(test);
  a.iload(0).ifgt(body);
  a.iload(3).op(bytecode::Op::ireturn);
  const bytecode::Method m = a.build();

  std::printf("=== 1. The method (JAVAP view, Figure 28 style) ===\n%s\n",
              bytecode::disassemble(m, program.pool).c_str());

  std::printf("=== 2. Loading (Figure 20) ===\n");
  for (const auto& cfg_name : {"Compact2", "Sparse2", "Hetero2"}) {
    JavaFlowMachine machine(sim::config_by_name(cfg_name));
    const DeployedMethod d = machine.deploy(m, program.pool);
    std::printf(
        "  %-10s greedy load spans %2d nodes for %2zu instructions "
        "(%.2f nodes/inst), stream takes %lld serial cycles\n",
        cfg_name, d.placement.max_slot + 1, m.code.size(),
        d.placement.nodes_per_instruction(m.code.size()),
        static_cast<long long>(d.placement.load_cycles));
  }

  JavaFlowMachine machine(sim::config_by_name("Compact2"));
  const DeployedMethod d = machine.deploy(m, program.pool);
  std::printf(
      "\n=== 3. Address resolution (Figures 21-22) ===\n"
      "  phase A (addresses down): %lld cycles\n"
      "  phase B (needs up):       %lld cycles, max queue %d\n"
      "  total: %lld cycles for %zu instructions (~%.1fx, Table 7)\n",
      static_cast<long long>(d.resolution.phase_a_cycles),
      static_cast<long long>(d.resolution.phase_b_cycles),
      d.resolution.max_queue_up,
      static_cast<long long>(d.resolution.total_cycles), m.code.size(),
      static_cast<double>(d.resolution.total_cycles) /
          static_cast<double>(m.code.size()));
  std::printf("  producer -> consumer links:\n");
  for (const fabric::Edge& e : d.resolution.graph.edges) {
    std::printf("    %2d -> %2d side %d%s\n", e.producer, e.consumer,
                e.side, e.merge ? "  (merge)" : "");
  }

  std::printf(
      "\n=== 4. Execution (token bundle, Figure 23 + §6.3) ===\n");
  for (const auto scenario : {sim::BranchPredictor::Scenario::BP1,
                              sim::BranchPredictor::Scenario::BP2}) {
    const auto r = machine.execute(d, scenario);
    std::printf(
        "  %s: %lld fired / %lld mesh cycles -> IPC %.3f, coverage "
        "%.0f%%, serial msgs %lld, mesh msgs %lld\n",
        scenario == sim::BranchPredictor::Scenario::BP1 ? "BP-1" : "BP-2",
        static_cast<long long>(r.instructions_fired),
        static_cast<long long>(r.mesh_cycles), r.ipc(), r.coverage() * 100,
        static_cast<long long>(r.serial_messages),
        static_cast<long long>(r.mesh_messages));
  }
  std::printf(
      "\nThe loop's conditional back jump is taken 9 of 10 times; each\n"
      "taken pass buffers the bundle until TAIL arrives, replays it up\n"
      "the reverse serial network, and resets the loop body (§6.3).\n");
  return 0;
}
